(* Observability layer: span tracing semantics (nesting, flush, the
   zero-cost-when-off contract), metrics atomicity under a 4-domain
   increment storm, the leveled log facade, the estimator-accuracy
   audit, and the property that turning tracing on leaves program
   outputs bit-identical under both kernel backends. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Obs = Galley_obs
module Trace = Galley_obs.Trace
module Metrics = Galley_obs.Metrics
module Log = Galley_obs.Log
module Audit = Galley_obs.Audit
module Pool = Galley_parallel.Pool
module Exec = Galley_engine.Exec
module D = Galley.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------- *)
(* Trace.                                                           *)
(* -------------------------------------------------------------- *)

let test_span_nesting () =
  Trace.reset ();
  Trace.enable ();
  let forced = ref false in
  let v =
    Obs.span ~name:"outer"
      ~attrs:(fun () ->
        forced := true;
        [ ("k", "v") ])
      (fun () -> Obs.span ~name:"inner" (fun () -> 41 + 1))
  in
  Obs.instant ~name:"mark" ();
  check_int "span returns body value" 42 v;
  check_bool "attrs forced when enabled" true !forced;
  let evs = Trace.drain () in
  check_int "three events" 3 (List.length evs);
  let find n = List.find (fun e -> e.Trace.ev_name = n) evs in
  let outer = find "outer" and inner = find "inner" and mark = find "mark" in
  check_bool "mark is an instant" true (mark.Trace.ev_ph = 'i');
  check_bool "spans are complete events" true
    (outer.Trace.ev_ph = 'X' && inner.Trace.ev_ph = 'X');
  check_bool "durations non-negative" true
    (outer.Trace.ev_dur >= 0 && inner.Trace.ev_dur >= 0);
  check_bool "inner nested in outer" true
    (inner.Trace.ev_ts >= outer.Trace.ev_ts
    && inner.Trace.ev_ts + inner.Trace.ev_dur
       <= outer.Trace.ev_ts + outer.Trace.ev_dur);
  check_bool "outer kept its attrs" true
    (List.mem ("k", "v") outer.Trace.ev_args);
  check_int "drain flushed the buffers" 0 (List.length (Trace.drain ()));
  Trace.disable ()

let test_span_exception () =
  Trace.reset ();
  Trace.enable ();
  let raised =
    try
      ignore (Obs.span ~name:"bang" (fun () : int -> failwith "boom"));
      false
    with Failure msg -> msg = "boom"
  in
  check_bool "exception propagates" true raised;
  let evs = Trace.drain () in
  check_int "failed span still emitted" 1 (List.length evs);
  let e = List.hd evs in
  check_bool "error recorded in args" true
    (List.mem_assoc "error" e.Trace.ev_args);
  Trace.disable ()

let test_disabled_zero_cost () =
  Trace.disable ();
  Trace.reset ();
  let forced = ref false in
  let v =
    Obs.span ~name:"off"
      ~attrs:(fun () ->
        forced := true;
        [])
      (fun () -> 7)
  in
  Obs.instant ~name:"off-mark"
    ~attrs:(fun () ->
      forced := true;
      [])
    ();
  check_int "body still runs" 7 v;
  check_bool "attrs never forced when disabled" false !forced;
  check_int "nothing recorded" 0 (List.length (Trace.drain ()))

let test_chrome_json_valid () =
  Trace.reset ();
  Trace.enable ();
  Obs.span ~name:"a \"quoted\" name" (fun () -> ());
  Obs.instant ~name:"i" ();
  let json = Trace.to_chrome_json (Trace.drain ()) in
  Trace.disable ();
  (* Structural sanity without a JSON parser: balanced and escaped. *)
  check_bool "has traceEvents" true
    (String.length json > 0
    && String.sub json 0 1 = "{"
    &&
    let needle = "\"traceEvents\":[" in
    let n = String.length needle and l = String.length json in
    let rec found i =
      i + n <= l && (String.sub json i n = needle || found (i + 1))
    in
    found 0);
  check_bool "quotes escaped" true
    (let rec bad i =
       i + 9 <= String.length json
       && (String.sub json i 9 = "\"quoted\" " || bad (i + 1))
     in
     (* the raw unescaped sequence ["quoted" ] must not appear *)
     not (bad 0))

(* -------------------------------------------------------------- *)
(* Metrics.                                                         *)
(* -------------------------------------------------------------- *)

let test_metrics_basics () =
  let c = Metrics.counter "test.basic.counter" in
  Metrics.incr c;
  Metrics.add c 4;
  check_int "counter value" 5 (Metrics.value c);
  check_bool "counter_value finds it" true
    (Metrics.counter_value "test.basic.counter" = Some 5);
  let g = Metrics.gauge "test.basic.gauge" in
  Metrics.set_gauge g 2.5;
  check_bool "gauge value" true (Metrics.gauge_value g = 2.5);
  let h = Metrics.histogram "test.basic.hist" in
  List.iter (Metrics.observe h) [ 1; 2; 3; 1000 ];
  check_int "histogram count" 4 (Metrics.histogram_count h);
  check_int "histogram sum" 1006 (Metrics.histogram_sum h);
  let snap = Metrics.snapshot () in
  check_bool "snapshot has histogram mean" true
    (List.mem_assoc "test.basic.hist.mean" snap);
  check_bool "type mismatch rejected" true
    (try
       ignore (Metrics.gauge "test.basic.counter");
       false
     with Invalid_argument _ -> true)

let test_metrics_atomic_under_domains () =
  let c = Metrics.counter "test.storm" in
  let base = Metrics.value c in
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let tasks = 200 and per_task = 500 in
      Pool.run_all pool
        (Array.init tasks (fun _ () ->
             for _ = 1 to per_task do
               Metrics.incr c
             done));
      check_int "no lost increments across domains" (tasks * per_task)
        (Metrics.value c - base))

(* -------------------------------------------------------------- *)
(* Log.                                                             *)
(* -------------------------------------------------------------- *)

let test_log_levels () =
  let saved = Log.get_level () in
  let buf = ref [] in
  Log.set_sink (Some (fun l m -> buf := (l, m) :: !buf));
  Log.reset_counts ();
  Log.set_level Log.Warn;
  Log.debug "suppressed %d" 1;
  Log.info "suppressed";
  Log.warn "visible %s" "w";
  Log.error "visible e";
  check_int "two messages reached the sink" 2 (List.length !buf);
  check_int "warn counted" 1 (Log.emitted_count Log.Warn);
  check_int "error counted" 1 (Log.emitted_count Log.Error);
  check_int "debug not counted" 0 (Log.emitted_count Log.Debug);
  check_bool "warn enabled at Warn" true (Log.enabled Log.Warn);
  check_bool "info disabled at Warn" false (Log.enabled Log.Info);
  Log.set_level Log.Debug;
  Log.debug "now visible";
  check_int "debug counted after lowering" 1 (Log.emitted_count Log.Debug);
  Log.set_level saved;
  Log.set_sink None;
  Log.reset_counts ()

(* -------------------------------------------------------------- *)
(* Audit.                                                           *)
(* -------------------------------------------------------------- *)

let test_q_error () =
  let q = Audit.q_error ~predicted:10.0 ~actual:5.0 in
  check_bool "over-estimate" true (q = 2.0);
  let q = Audit.q_error ~predicted:5.0 ~actual:10.0 in
  check_bool "symmetric" true (q = 2.0);
  check_bool "exact is 1" true (Audit.q_error ~predicted:7.0 ~actual:7.0 = 1.0);
  check_bool "zeroes clamp to 1" true
    (Audit.q_error ~predicted:0.0 ~actual:0.0 = 1.0);
  check_bool "nan passes through" true
    (Float.is_nan (Audit.q_error ~predicted:Float.nan ~actual:3.0))

let test_audit_driver_sanity () =
  let prng = Prng.create 11 in
  let e =
    T.random ~prng ~dims:[| 50; 50 |]
      ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.08 ()
  in
  let d =
    T.random ~prng ~dims:[| 50 |] ~formats:[| T.Dense |] ~density:0.5 ()
  in
  let source =
    "G = sum[j](E[i,j] * E[j,k] * D[k])\nt = sum[i,k](G[i,k] * E[i,k])"
  in
  let config = { D.default_config with D.audit = true; domains = 1 } in
  match
    D.run_source_checked ~config ~inputs:[ ("E", e); ("D", d) ] source
  with
  | Error err -> Alcotest.failf "run failed: %s" (Galley.Errors.to_string err)
  | Ok res -> (
      match res.D.audit with
      | None -> Alcotest.fail "audit missing despite config.audit = true"
      | Some a ->
          let rows = Audit.rows a in
          check_bool "rows nonempty" true (rows <> []);
          List.iter
            (fun (r : Audit.row) ->
              check_bool
                (Printf.sprintf "%s/%s has an actual" r.Audit.r_query
                   r.Audit.r_estimator)
                true
                (r.Audit.r_actual <> None);
              match r.Audit.r_q_error with
              | None -> Alcotest.fail "missing q-error"
              | Some q ->
                  check_bool "q-error finite and >= 1" true
                    ((not (Float.is_nan q)) && Float.is_finite q && q >= 1.0))
            rows;
          let ests =
            List.map (fun s -> s.Audit.s_estimator) (Audit.summaries a)
          in
          check_bool "uniform summarized" true (List.mem "uniform" ests);
          check_bool "chain summarized" true (List.mem "chain" ests);
          (* A run without the flag records nothing. *)
          let plain =
            D.run_source_checked ~config:D.default_config
              ~inputs:[ ("E", e); ("D", d) ]
              source
          in
          check_bool "no audit by default" true
            (match plain with Ok r -> r.D.audit = None | Error _ -> false))

let test_deadline_tick_metric () =
  (* With an execution deadline set, kernels flush coarse tick quanta
     into kernel.deadline_ticks from the periodic cancellation check. *)
  let before =
    Option.value ~default:0 (Metrics.counter_value "kernel.deadline_ticks")
  in
  let prng = Prng.create 5 in
  let a =
    T.random ~prng ~dims:[| 160; 160 |]
      ~formats:[| T.Dense; T.Dense |]
      ~density:0.9 ()
  in
  let b =
    T.random ~prng ~dims:[| 160 |] ~formats:[| T.Dense |] ~density:0.9 ()
  in
  let source = "y = sum[j](A[i,j] * b[j])" in
  let config = { D.default_config with D.timeout = Some 60.0; domains = 1 } in
  (match
     D.run_source_checked ~config ~inputs:[ ("A", a); ("b", b) ] source
   with
  | Ok _ -> ()
  | Error err -> Alcotest.failf "run failed: %s" (Galley.Errors.to_string err));
  let after =
    Option.value ~default:0 (Metrics.counter_value "kernel.deadline_ticks")
  in
  check_bool "deadline ticks flushed" true (after > before)

(* -------------------------------------------------------------- *)
(* Tracing must not perturb results (bit-for-bit, both backends).    *)
(* -------------------------------------------------------------- *)

let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

let prop_trace_identical =
  QCheck.Test.make ~name:"tracing on = tracing off (bit-for-bit)" ~count:25
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let fmt () =
        match Prng.int prng 4 with
        | 0 -> T.Dense
        | 1 -> T.Sparse_list
        | 2 -> T.Bytemap
        | _ -> T.Hash
      in
      let n1 = 4 + Prng.int prng 8 and n2 = 4 + Prng.int prng 8 in
      let a =
        T.random ~prng ~dims:[| n1; n2 |]
          ~formats:[| fmt (); fmt () |]
          ~density:(Prng.float_range prng 0.15 0.6)
          ()
      in
      let v =
        T.random ~prng ~dims:[| n2 |] ~formats:[| fmt () |]
          ~density:(Prng.float_range prng 0.2 0.7)
          ()
      in
      let source =
        match Prng.int prng 3 with
        | 0 -> "out = sum[j](A[i,j] * v[j])"
        | 1 -> "out = sum[i,j](sigmoid(A[i,j]) * v[j])"
        | _ -> "w = sum[j](A[i,j] * v[j])\nout = sum[i](w[i] * w[i])"
      in
      let inputs = [ ("A", a); ("v", v) ] in
      List.iter
        (fun backend ->
          List.iter
            (fun domains ->
              let run () =
                match
                  D.run_source_checked
                    ~config:
                      {
                        D.default_config with
                        D.kernel_backend = backend;
                        domains;
                      }
                    ~inputs source
                with
                | Ok r -> D.output_of r "out"
                | Error e ->
                    QCheck.Test.fail_reportf "run failed: %s"
                      (Galley.Errors.to_string e)
              in
              Trace.disable ();
              let off = run () in
              Trace.enable ();
              let on = run () in
              Trace.disable ();
              Trace.reset ();
              if not (bits_equal off on) then
                QCheck.Test.fail_reportf
                  "tracing perturbed outputs (backend %s, domains %d)"
                  (match backend with
                  | Exec.Staged -> "staged"
                  | Exec.Interp -> "interp")
                  domains)
            [ 1; 4 ])
        [ Exec.Staged; Exec.Interp ];
      true)

let () =
  Alcotest.run "obs"
    [
      ( "trace",
        [
          Alcotest.test_case "span nesting and flush" `Quick test_span_nesting;
          Alcotest.test_case "span on exception" `Quick test_span_exception;
          Alcotest.test_case "disabled spans are free" `Quick
            test_disabled_zero_cost;
          Alcotest.test_case "chrome json shape" `Quick test_chrome_json_valid;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters, gauges, histograms" `Quick
            test_metrics_basics;
          Alcotest.test_case "atomic under domains=4" `Quick
            test_metrics_atomic_under_domains;
        ] );
      ("log", [ Alcotest.test_case "levels and sink" `Quick test_log_levels ]);
      ( "audit",
        [
          Alcotest.test_case "q-error" `Quick test_q_error;
          Alcotest.test_case "driver audit sanity" `Quick
            test_audit_driver_sanity;
          Alcotest.test_case "deadline tick metric" `Quick
            test_deadline_tick_metric;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_trace_identical ] );
    ]
