(* Additional coverage: tensor IO roundtrips, growable vectors, the
   distributivity expansion pass, error handling and failure injection
   across layers, and plan pretty-printers. *)

module T = Galley_tensor.Tensor
module Io = Galley_tensor.Tensor_io
module Vec = Galley_tensor.Vec
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Dist = Galley_logical.Distribute
module D = Galley.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* -------------------------------------------------------------- *)
(* Tensor IO.                                                       *)
(* -------------------------------------------------------------- *)

let with_temp_file f =
  let path = Filename.temp_file "galley_test" ".coo" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_io_roundtrip () =
  with_temp_file (fun path ->
      let prng = Prng.create 1 in
      let t =
        T.random ~prng ~dims:[| 6; 8 |] ~formats:[| T.Dense; T.Sparse_list |]
          ~density:0.3 ()
      in
      Io.save path t;
      let t2 = Io.load path in
      check_bool "values preserved" true (T.equal_approx t t2);
      Alcotest.(check (array int)) "dims" (T.dims t) (T.dims t2);
      check_float "fill" (T.fill t) (T.fill t2))

let test_io_nonzero_fill () =
  with_temp_file (fun path ->
      let t =
        T.of_coo ~fill:0.5 ~dims:[| 4 |] ~formats:[| T.Sparse_list |]
          [| ([| 2 |], 1.5) |]
      in
      Io.save path t;
      let t2 = Io.load path in
      check_float "fill restored" 0.5 (T.fill t2);
      check_float "entry" 1.5 (T.get t2 [| 2 |]);
      check_float "background" 0.5 (T.get t2 [| 0 |]))

let test_io_missing_dims () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "0 1 2.5\n";
      close_out oc;
      check_bool "missing header rejected" true
        (try
           ignore (Io.load path);
           false
         with Invalid_argument _ -> true))

let test_io_comments_and_blank_lines () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "# dims: 3\n\n# a comment\n1 2.0\n\n";
      close_out oc;
      let t = Io.load path in
      check_float "parsed" 2.0 (T.get t [| 1 |]))

(* -------------------------------------------------------------- *)
(* Growable vectors.                                                *)
(* -------------------------------------------------------------- *)

let test_vec_float_growth () =
  let v = Vec.Float.create ~capacity:1 () in
  for i = 0 to 999 do
    Vec.Float.push v (float_of_int i)
  done;
  check_int "length" 1000 (Vec.Float.length v);
  check_float "first" 0.0 (Vec.Float.get v 0);
  check_float "last" 999.0 (Vec.Float.get v 999);
  Vec.Float.set v 500 (-1.0);
  check_float "set" (-1.0) (Vec.Float.get v 500);
  check_int "to_array" 1000 (Array.length (Vec.Float.to_array v));
  Vec.Float.clear v;
  check_int "cleared" 0 (Vec.Float.length v)

let test_vec_int_last () =
  let v = Vec.Int.create () in
  Vec.Int.push v 3;
  Vec.Int.push v 7;
  check_int "last" 7 (Vec.Int.last v)

let test_vec_poly () =
  let v = Vec.Poly.create ~dummy:"" () in
  Vec.Poly.push v "a";
  Vec.Poly.push v "b";
  Alcotest.(check string) "get" "b" (Vec.Poly.get v 1);
  Vec.Poly.set v 0 "z";
  Alcotest.(check (array string)) "to_array" [| "z"; "b" |] (Vec.Poly.to_array v)

(* -------------------------------------------------------------- *)
(* Distribution pass.                                               *)
(* -------------------------------------------------------------- *)

let test_normalize_square () =
  match Dist.normalize (Ir.map Op.Square [ Ir.input "A" [ "i" ] ]) with
  | Ir.Map (Op.Mul, [ Ir.Input ("A", _); Ir.Input ("A", _) ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_normalize_sub () =
  match Dist.normalize (Ir.Map (Op.Sub, [ Ir.input "A" [ "i" ]; Ir.input "B" [ "i" ] ])) with
  | Ir.Map (Op.Add, [ Ir.Input ("A", _); Ir.Map (Op.Neg, [ Ir.Input ("B", _) ]) ]) -> ()
  | e -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e)

let test_hoist_neg_parity () =
  let neg x = Ir.Map (Op.Neg, [ x ]) in
  let e = Ir.mul [ neg (Ir.input "A" [ "i" ]); neg (Ir.input "B" [ "i" ]) ] in
  (match Dist.hoist_neg e with
  | Ir.Map (Op.Mul, _) -> () (* two negations cancel *)
  | e' -> Alcotest.failf "even parity: %s" (Ir.expr_to_string e'));
  let e3 = Ir.mul [ neg (Ir.input "A" [ "i" ]); Ir.input "B" [ "i" ] ] in
  match Dist.hoist_neg e3 with
  | Ir.Map (Op.Neg, [ Ir.Map (Op.Mul, _) ]) -> ()
  | e' -> Alcotest.failf "odd parity: %s" (Ir.expr_to_string e')

let test_expand_product_of_sums () =
  let e =
    Ir.mul
      [
        Ir.add [ Ir.input "A" [ "i" ]; Ir.input "B" [ "i" ] ];
        Ir.input "C" [ "i" ];
      ]
  in
  match Dist.expand e with
  | Ir.Map (Op.Add, [ Ir.Map (Op.Mul, _); Ir.Map (Op.Mul, _) ]) -> ()
  | e' -> Alcotest.failf "unexpected %s" (Ir.expr_to_string e')

let test_expand_size_cap () =
  (* A product of many sums explodes; the expansion must bail out. *)
  let sum2 k =
    Ir.add
      [ Ir.input (Printf.sprintf "A%d" k) [ "i" ]; Ir.input (Printf.sprintf "B%d" k) [ "i" ] ]
  in
  let e = Ir.mul (List.init 12 sum2) in
  check_bool "raises Too_large" true
    (try
       ignore (Dist.expand e);
       false
     with Dist.Too_large -> true)

let test_distributed_variant_none_when_same () =
  let schema = Galley_plan.Schema.create () in
  Galley_plan.Schema.declare schema "A" ~dims:[| 4 |] ~fill:0.0;
  check_bool "no change, no variant" true
    (Dist.distributed_variant schema (Ir.input "A" [ "i" ]) = None)

(* -------------------------------------------------------------- *)
(* Failure injection across layers.                                 *)
(* -------------------------------------------------------------- *)

let test_run_with_unbound_input () =
  let q = Ir.query "r" (Ir.input "NOPE" [ "i" ]) in
  check_bool "raises" true
    (try
       ignore (D.run_query ~inputs:[] q);
       false
     with Invalid_argument _ -> true)

let test_run_with_arity_mismatch () =
  let prng = Prng.create 2 in
  let a = T.random ~prng ~dims:[| 4; 4 |] ~formats:[| T.Dense; T.Dense |] ~density:0.5 () in
  let q = Ir.query "r" (Ir.input "A" [ "i" ]) in
  check_bool "raises" true
    (try
       ignore (D.run_query ~inputs:[ ("A", a) ] q);
       false
     with Invalid_argument _ -> true)

let test_run_with_dim_conflict () =
  let prng = Prng.create 3 in
  let a = T.random ~prng ~dims:[| 4 |] ~formats:[| T.Dense |] ~density:0.5 () in
  let b = T.random ~prng ~dims:[| 5 |] ~formats:[| T.Dense |] ~density:0.5 () in
  let q = Ir.query "r" (Ir.mul [ Ir.input "A" [ "i" ]; Ir.input "B" [ "i" ] ]) in
  check_bool "raises" true
    (try
       ignore (D.run_query ~inputs:[ ("A", a); ("B", b) ] q);
       false
     with Invalid_argument _ -> true)

let test_bad_aggregate_op () =
  check_bool "sub is not an aggregate" true
    (try
       ignore (Ir.agg Op.Sub [ "i" ] (Ir.input "A" [ "i" ]));
       false
     with Invalid_argument _ -> true)

let test_bad_map_arity () =
  check_bool "binary op with 3 args" true
    (try
       ignore (Ir.map Op.Sub [ Ir.lit 1.0; Ir.lit 2.0; Ir.lit 3.0 ]);
       false
     with Invalid_argument _ -> true)

let test_output_of_missing () =
  let prng = Prng.create 4 in
  let a = T.random ~prng ~dims:[| 4 |] ~formats:[| T.Dense |] ~density:0.5 () in
  let r = D.run_query ~inputs:[ ("A", a) ] (Ir.query "r" (Ir.input "A" [ "i" ])) in
  check_bool "missing output raises" true
    (try
       ignore (D.output_of r "nope");
       false
     with Invalid_argument _ -> true)

(* -------------------------------------------------------------- *)
(* Pretty printers (smoke: non-empty, no exceptions).                *)
(* -------------------------------------------------------------- *)

let test_pretty_printers () =
  let prng = Prng.create 5 in
  let a = T.random ~prng ~dims:[| 5; 5 |] ~formats:[| T.Dense; T.Sparse_list |] ~density:0.4 () in
  let q =
    Ir.query ~out_order:[ "i" ] "r"
      Ir.(sum [ "j" ] (mul [ input "A" [ "i"; "j" ]; input "A" [ "j"; "i" ] ]))
  in
  let res = D.run_query ~inputs:[ ("A", a) ] q in
  let s1 =
    String.concat "\n"
      (List.map Galley_plan.Logical_query.to_string res.D.logical_plan)
  in
  let s2 = Galley_plan.Physical.plan_to_string res.D.physical_plan in
  check_bool "logical pp" true (String.length s1 > 0);
  check_bool "physical pp" true (String.length s2 > 0);
  check_bool "tensor pp" true (String.length (T.to_string a) > 0);
  check_bool "program pp" true
    (String.length (Ir.program_to_string { Ir.queries = [ q ]; outputs = [ "r" ] }) > 0)

(* -------------------------------------------------------------- *)
(* Session kernel-cache accounting across repeated plans.            *)
(* -------------------------------------------------------------- *)

let test_session_kernel_cache_warm () =
  let prng = Prng.create 6 in
  let a = T.random ~prng ~dims:[| 30; 30 |] ~formats:[| T.Dense; T.Sparse_list |] ~density:0.2 () in
  let plan =
    [
      Galley_plan.Logical_query.make ~output_idxs:[ "i" ] ~name:"rowsum"
        ~agg_op:Op.Add ~agg_idxs:[ "j" ] ~body:(Ir.input "A" [ "i"; "j" ]) ();
    ]
  in
  let s = D.Session.create () in
  D.Session.bind s "A" a;
  let r1 = D.Session.run_logical_plan s ~outputs:[ "rowsum" ] plan in
  (* Session timings report per-run deltas: the cold run compiles, the
     warm run reuses the resident kernel cache and compiles nothing. *)
  check_bool "cold run compiled" true (r1.D.timings.D.compile_count >= 1);
  let r2 = D.Session.run_logical_plan s ~outputs:[ "rowsum" ] plan in
  check_int "no new compilations when warm" 0 r2.D.timings.D.compile_count

let () =
  Alcotest.run "misc"
    [
      ( "tensor io",
        [
          Alcotest.test_case "roundtrip" `Quick test_io_roundtrip;
          Alcotest.test_case "nonzero fill" `Quick test_io_nonzero_fill;
          Alcotest.test_case "missing dims" `Quick test_io_missing_dims;
          Alcotest.test_case "comments" `Quick test_io_comments_and_blank_lines;
        ] );
      ( "vec",
        [
          Alcotest.test_case "float growth" `Quick test_vec_float_growth;
          Alcotest.test_case "int last" `Quick test_vec_int_last;
          Alcotest.test_case "poly" `Quick test_vec_poly;
        ] );
      ( "distribution",
        [
          Alcotest.test_case "square" `Quick test_normalize_square;
          Alcotest.test_case "sub" `Quick test_normalize_sub;
          Alcotest.test_case "neg parity" `Quick test_hoist_neg_parity;
          Alcotest.test_case "expand" `Quick test_expand_product_of_sums;
          Alcotest.test_case "size cap" `Quick test_expand_size_cap;
          Alcotest.test_case "identity" `Quick test_distributed_variant_none_when_same;
        ] );
      ( "failure injection",
        [
          Alcotest.test_case "unbound input" `Quick test_run_with_unbound_input;
          Alcotest.test_case "arity mismatch" `Quick test_run_with_arity_mismatch;
          Alcotest.test_case "dim conflict" `Quick test_run_with_dim_conflict;
          Alcotest.test_case "bad aggregate" `Quick test_bad_aggregate_op;
          Alcotest.test_case "bad map arity" `Quick test_bad_map_arity;
          Alcotest.test_case "missing output" `Quick test_output_of_missing;
        ] );
      ( "printing",
        [ Alcotest.test_case "pretty printers" `Quick test_pretty_printers ] );
      ( "session",
        [ Alcotest.test_case "warm kernel cache" `Quick test_session_kernel_cache_warm ] );
    ]
