(* Staged kernel compiler: cursor algebra unit tests (intersection, union,
   galloping seek, edge cases) and a differential qcheck suite asserting
   that the staged backend, the constraint-tree interpreter, and the
   brute-force reference agree on random kernels across formats, fills
   (including non-annihilating fill correction), and aggregates.  Staged
   and interpreted results must agree bit-for-bit; the reference sums in a
   different order, so it is compared with a tolerance. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module LQ = Galley_plan.Logical_query
module Popt = Galley_physical.Optimizer
module Exec = Galley_engine.Exec
module Ctx = Galley_stats.Ctx
module Cursors = Galley_compile.Cursors

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* -------------------------------------------------------------- *)
(* Cursor algebra.                                                  *)
(* -------------------------------------------------------------- *)

let test_cursor_sorted () =
  check_ints "empty" [] (Cursors.to_list (Cursors.of_sorted [||]));
  check_ints "singleton" [ 5 ] (Cursors.to_list (Cursors.of_sorted [| 5 |]));
  check_ints "walk" [ 1; 4; 9 ]
    (Cursors.to_list (Cursors.of_sorted [| 1; 4; 9 |]));
  let c = Cursors.of_sorted [| 1; 4; 9; 12 |] in
  c.Cursors.seek 4;
  check_int "seek exact" 4 c.Cursors.key;
  c.Cursors.seek 5;
  check_int "seek between" 9 c.Cursors.key;
  c.Cursors.seek 100;
  check_int "seek past end" Cursors.exhausted c.Cursors.key;
  (* Seeks never move backwards. *)
  let c = Cursors.of_sorted [| 2; 8 |] in
  c.Cursors.seek 8;
  c.Cursors.seek 3;
  check_int "seek is monotone" 8 c.Cursors.key

let test_cursor_gallop () =
  (* Long stream, far jumps: the galloping seek must land exactly. *)
  let evens = Array.init 1000 (fun i -> 2 * i) in
  let c = Cursors.of_sorted evens in
  c.Cursors.seek 1001;
  check_int "gallop to odd target" 1002 c.Cursors.key;
  c.Cursors.seek 1996;
  check_int "gallop to exact key" 1996 c.Cursors.key;
  c.Cursors.seek 1999;
  check_int "gallop exhausts" Cursors.exhausted c.Cursors.key

let test_cursor_union () =
  let u arrays =
    Cursors.to_list
      (Cursors.union (Array.map Cursors.of_sorted (Array.of_list arrays)))
  in
  check_ints "disjoint" [ 1; 2; 3; 4 ] (u [ [| 1; 3 |]; [| 2; 4 |] ]);
  check_ints "duplicates once" [ 1; 2; 3 ] (u [ [| 1; 2 |]; [| 2; 3 |] ]);
  check_ints "empty member" [ 7 ] (u [ [||]; [| 7 |] ]);
  check_ints "all empty" [] (u [ [||]; [||] ]);
  (* A union is itself seekable (it can sit under an intersection). *)
  let c =
    Cursors.union [| Cursors.of_sorted [| 1; 5 |]; Cursors.of_sorted [| 3 |] |]
  in
  c.Cursors.seek 2;
  check_int "union seek" 3 c.Cursors.key

let test_cursor_inter () =
  let i arrays probes =
    Cursors.to_list
      (Cursors.inter
         (Array.map Cursors.of_sorted (Array.of_list arrays))
         (Array.of_list probes))
  in
  check_ints "overlap" [ 3; 7 ] (i [ [| 1; 3; 7 |]; [| 3; 5; 7 |] ] []);
  check_ints "disjoint" [] (i [ [| 1; 3 |]; [| 2; 4 |] ] []);
  check_ints "empty member kills" [] (i [ [| 1; 2; 3 |]; [||] ] []);
  check_ints "singleton" [ 2 ] (i [ [| 2 |]; [| 1; 2; 3 |] ] []);
  check_ints "probe filter" [ 4 ]
    (i [ [| 1; 2; 3; 4 |] ] [ (fun k -> k mod 4 = 0) ]);
  check_ints "probe rejects all" [] (i [ [| 1; 3 |] ] [ (fun _ -> false) ]);
  (* Three-way leapfrog with skewed sizes. *)
  let big = Array.init 500 (fun k -> 3 * k) in
  check_ints "three way" [ 0; 30 ]
    (i [ big; [| 0; 10; 30; 31 |]; [| 0; 5; 30; 1200 |] ] [])

let test_cursor_inter_randomized () =
  let prng = Prng.create 7 in
  for _ = 1 to 50 do
    let rand_sorted () =
      let n = Prng.int prng 30 in
      let tbl = Hashtbl.create 16 in
      for _ = 1 to n do
        Hashtbl.replace tbl (Prng.int prng 60) ()
      done;
      let a = Array.of_seq (Hashtbl.to_seq_keys tbl) in
      Array.sort compare a;
      a
    in
    let a = rand_sorted () and b = rand_sorted () and c = rand_sorted () in
    let mem arr x = Array.exists (( = ) x) arr in
    let naive_inter =
      List.filter (fun x -> mem b x && mem c x) (Array.to_list a)
    in
    let naive_union =
      List.filter
        (fun x -> mem a x || mem b x || mem c x)
        (List.init 60 Fun.id)
    in
    check_ints "random inter = naive" naive_inter
      (Cursors.to_list
         (Cursors.inter
            [| Cursors.of_sorted a; Cursors.of_sorted b; Cursors.of_sorted c |]
            [||]));
    check_ints "random union = naive" naive_union
      (Cursors.to_list
         (Cursors.union
            [| Cursors.of_sorted a; Cursors.of_sorted b; Cursors.of_sorted c |]))
  done

(* -------------------------------------------------------------- *)
(* Differential: staged vs interpreted vs reference.                *)
(* -------------------------------------------------------------- *)

let fresh_gen () =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "#c%d" !c

let plan_for ?(popt_config = Popt.default_config) inputs (q : LQ.t) =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  Popt.plan_query ~config:popt_config ctx ~fresh:(fresh_gen ()) q

let run_plan_with backend inputs plan name =
  let exec = Exec.create ~backend () in
  List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
  Exec.run_plan exec plan;
  Exec.lookup exec name

(* Bit-for-bit equality of the dense images (and of fills/dims). *)
let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

let reference inputs (q : LQ.t) =
  List.assoc q.LQ.name
    (Galley.Reference.eval_program inputs
       { Ir.queries = [ LQ.to_query q ]; outputs = [ q.LQ.name ] })

(* Plan once, execute under both backends, compare bit-for-bit, and check
   both against the brute-force reference with a tolerance. *)
let check_differential ?popt_config name inputs (q : LQ.t) =
  let plan = plan_for ?popt_config inputs q in
  let staged = run_plan_with Exec.Staged inputs plan q.LQ.name in
  let interp = run_plan_with Exec.Interp inputs plan q.LQ.name in
  if not (bits_equal staged interp) then
    Alcotest.failf "%s: staged and interpreted backends disagree:\n%s\nvs\n%s"
      name (T.to_string staged) (T.to_string interp);
  let want = reference inputs q in
  if not (T.equal_approx ~eps:1e-6 staged want) then
    Alcotest.failf "%s: staged backend disagrees with reference:\ngot  %s\nwant %s"
      name (T.to_string staged) (T.to_string want)

let prop_differential =
  QCheck.Test.make ~name:"staged = interpreted = reference" ~count:160
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let fmt () =
        match Prng.int prng 4 with
        | 0 -> T.Dense
        | 1 -> T.Sparse_list
        | 2 -> T.Bytemap
        | _ -> T.Hash
      in
      let fill () =
        (* Mostly the annihilating 0, sometimes 1 or 0.5: non-annihilating
           fills flip intersections to unions and exercise the freeze-time
           fill correction. *)
        match Prng.int prng 4 with 0 | 1 -> 0.0 | 2 -> 1.0 | _ -> 0.5
      in
      let n1 = 3 + Prng.int prng 5 and n2 = 3 + Prng.int prng 5 in
      let rand dims =
        T.random ~fill:(fill ()) ~prng ~dims
          ~formats:(Array.init (Array.length dims) (fun _ -> fmt ()))
          ~density:(Prng.float_range prng 0.15 0.6)
          ()
      in
      let a = rand [| n1; n2 |] in
      let b = rand [| n2 |] in
      let c = rand [| n1 |] in
      let inputs = [ ("A", a); ("b", b); ("c", c) ] in
      let leaf () =
        match Prng.int prng 4 with
        | 0 -> Ir.input "A" [ "i"; "j" ]
        | 1 -> Ir.input "b" [ "j" ]
        | 2 -> Ir.input "c" [ "i" ]
        | _ -> Ir.lit (Prng.float_range prng (-1.0) 2.0)
      in
      let rec gen depth =
        if depth = 0 || Prng.int prng 3 = 0 then leaf ()
        else
          match Prng.int prng 7 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | 2 -> Ir.Map (Op.Max, [ gen (depth - 1); gen (depth - 1) ])
          | 3 -> Ir.Map (Op.Min, [ gen (depth - 1); gen (depth - 1) ])
          | 4 -> Ir.Map (Op.Sub, [ gen (depth - 1); gen (depth - 1) ])
          | 5 -> Ir.map Op.Sigmoid [ gen (depth - 1) ]
          | _ -> Ir.map Op.Relu [ gen (depth - 1) ]
      in
      let body = gen 3 in
      let free = Ir.Idx_set.elements (Ir.free_indices body) in
      let agg_op =
        match Prng.int prng 4 with
        | 0 -> Op.Add
        | 1 -> Op.Max
        | 2 -> Op.Min
        | _ -> Op.Mul
      in
      let agg_idxs = List.filter (fun _ -> Prng.bool prng) free in
      let output_idxs = List.filter (fun i -> not (List.mem i agg_idxs)) free in
      let agg_op = if agg_idxs = [] then Op.Ident else agg_op in
      let out_fmts =
        Array.init (List.length output_idxs) (fun _ -> fmt ())
      in
      let popt_config =
        {
          Popt.default_config with
          format_override = (fun n -> if n = "out" then Some out_fmts else None);
        }
      in
      let q = LQ.make ~output_idxs ~name:"out" ~agg_op ~agg_idxs ~body () in
      check_differential ~popt_config "random kernel" inputs q;
      true)

(* Targeted differential shapes the random generator is unlikely to pin
   down precisely. *)

let test_all_fill_subtree () =
  (* One operand entirely at fill: sparse levels iterate nothing, and with
     a non-annihilating fill the union side still covers the other
     operand. *)
  let prng = Prng.create 99 in
  List.iter
    (fun fill ->
      let a =
        T.of_coo ~fill ~dims:[| 5; 6 |] ~formats:[| T.Sparse_list; T.Hash |]
          [||]
      in
      let b =
        T.random ~prng ~dims:[| 5; 6 |]
          ~formats:[| T.Dense; T.Sparse_list |]
          ~density:0.4 ()
      in
      let inputs = [ ("A", a); ("B", b) ] in
      List.iter
        (fun mk ->
          let q =
            LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add
              ~agg_idxs:[ "j" ]
              ~body:(mk [ Ir.input "A" [ "i"; "j" ]; Ir.input "B" [ "i"; "j" ] ])
              ()
          in
          check_differential "all-fill operand" inputs q)
        [ Ir.mul; Ir.add ])
    [ 0.0; 1.0 ]

let test_nonzero_fill_correction () =
  (* Fill-1 operands under Mul: the constraint tree is a union, the body
     fill is non-zero, and the Add aggregate must fold the skipped
     coordinates in at freeze time. *)
  let a =
    T.of_coo ~fill:1.0 ~dims:[| 4; 5 |] ~formats:[| T.Dense; T.Sparse_list |]
      [| ([| 0; 1 |], 3.0); ([| 2; 4 |], 0.5) |]
  in
  let b =
    T.of_coo ~fill:1.0 ~dims:[| 5 |] ~formats:[| T.Bytemap |]
      [| ([| 2 |], 2.0) |]
  in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "b" [ "j" ] ])
      ()
  in
  check_differential "non-annihilating fill" [ ("A", a); ("b", b) ] q

let test_hash_and_bytemap_intersection () =
  (* Sparse-list leader with hash and bytemap probers, all three formats on
     the same index. *)
  let prng = Prng.create 5 in
  let mk fmt = T.random ~prng ~dims:[| 40 |] ~formats:[| fmt |] ~density:0.3 () in
  let inputs =
    [ ("s", mk T.Sparse_list); ("h", mk T.Hash); ("m", mk T.Bytemap) ]
  in
  let q =
    LQ.make ~output_idxs:[] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "i" ]
      ~body:
        (Ir.mul
           [ Ir.input "s" [ "i" ]; Ir.input "h" [ "i" ]; Ir.input "m" [ "i" ] ])
      ()
  in
  check_differential "format mix" inputs q

let test_cache_accounting_identical () =
  (* Both backends must produce the same kernel-cache hit/miss pattern
     (Fig. 9 shape): same signature on a structural repeat, so the second
     invocation hits the cache under either compiler. *)
  let prng = Prng.create 11 in
  let mk () =
    T.random ~prng ~dims:[| 12; 12 |]
      ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.3 ()
  in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"r1" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "X" [ "i"; "j" ]; Ir.input "y" [ "j" ] ])
      ()
  in
  let counts backend =
    let exec = Exec.create ~backend ~cse:false () in
    let x1 = mk () and x2 = mk () in
    let y =
      T.random ~prng ~dims:[| 12 |] ~formats:[| T.Sparse_list |] ~density:0.5
        ()
    in
    let plan = plan_for [ ("X", x1); ("y", y) ] q in
    Exec.bind exec "X" x1;
    Exec.bind exec "y" y;
    Exec.run_plan exec plan;
    Exec.bind exec "X" x2;
    Exec.run_plan exec plan;
    let t = exec.Exec.timings in
    (t.Exec.compile_count, t.Exec.kernel_count)
  in
  let staged = counts Exec.Staged and interp = counts Exec.Interp in
  check_bool "identical cache accounting" true (staged = interp);
  check_int "one compile, two runs" 1 (fst staged);
  check_int "two kernel invocations" 2 (snd staged)

let () =
  Alcotest.run "compile"
    [
      ( "cursors",
        [
          Alcotest.test_case "sorted cursor" `Quick test_cursor_sorted;
          Alcotest.test_case "galloping seek" `Quick test_cursor_gallop;
          Alcotest.test_case "union" `Quick test_cursor_union;
          Alcotest.test_case "intersection" `Quick test_cursor_inter;
          Alcotest.test_case "randomized vs naive" `Quick
            test_cursor_inter_randomized;
        ] );
      ( "differential",
        [
          Alcotest.test_case "all-fill subtree" `Quick test_all_fill_subtree;
          Alcotest.test_case "non-annihilating fill" `Quick
            test_nonzero_fill_correction;
          Alcotest.test_case "hash/bytemap intersection" `Quick
            test_hash_and_bytemap_intersection;
          Alcotest.test_case "cache accounting" `Quick
            test_cache_accounting_identical;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_differential ] );
    ]
