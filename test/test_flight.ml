(* Observability-for-serve layer (PR 9): the flight-recorder ring
   (wrap-around, sequencing, JSONL schema), tail-based trace sampling
   (trigger priority, rolling-percentile slow detection, retained-ring
   bound, on-disk trace files, keep_all mode), Prometheus text
   exposition, the rotating telemetry journal, request-id log context,
   fixpoint iteration span attributes, and the property that leaving
   the recorder + sampler on is bit-for-bit invisible to results. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Obs = Galley_obs
module Trace = Galley_obs.Trace
module Metrics = Galley_obs.Metrics
module Log = Galley_obs.Log
module Flight = Galley_obs.Flight
module Sampler = Galley_obs.Sampler
module Journal = Galley_obs.Journal
module Json = Galley_obs.Json
module Exec = Galley_engine.Exec
module D = Galley.Driver
module Fix = Galley_fixpoint.Fixpoint

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let temp_dir prefix =
  let path = Filename.temp_file prefix "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

(* ------------------------------------------------------------------ *)
(* Flight recorder                                                      *)
(* ------------------------------------------------------------------ *)

let test_ring_wrap_and_seq () =
  let fl = Flight.create ~capacity:3 () in
  check_int "capacity" 3 (Flight.capacity fl);
  for i = 1 to 5 do
    let r =
      Flight.note fl
        { (Flight.empty_record ~id:(Printf.sprintf "r%d" i) ~op:"query") with
          Flight.fl_total_us = i * 100 }
    in
    check_int "note assigns monotonic seq" i r.Flight.fl_seq
  done;
  check_int "total counts evictions too" 5 (Flight.total fl);
  let rs = Flight.records fl in
  check_int "ring holds only capacity" 3 (List.length rs);
  check_bool "oldest first, newest retained" true
    (List.map (fun r -> r.Flight.fl_seq) rs = [ 3; 4; 5 ]);
  check_string "ids survive the wrap" "r5"
    (List.nth rs 2).Flight.fl_id;
  Flight.clear fl;
  check_int "clear empties the ring" 0 (List.length (Flight.records fl));
  check_int "clear keeps the lifetime count" 5 (Flight.total fl)

let test_record_json_schema () =
  let r =
    {
      (Flight.empty_record ~id:"q \"quoted\"" ~op:"query") with
      Flight.fl_outcome = "error:injected_fault";
      fl_program = Flight.digest "y = sum[j](E[i,j])";
      fl_plan = Flight.digest "plan";
      fl_qos = "interactive";
      fl_rung = "greedy";
      fl_total_us = 1234;
      fl_iterations = 7;
      fl_replans = 2;
      fl_qerrors = [ ("uniform", 3.5); ("chain", Float.nan) ];
      fl_trace = "trace-0001-q.json";
    }
  in
  let fl = Flight.create ~capacity:4 () in
  let r = Flight.note fl r in
  let line = Flight.to_json r in
  match Json.parse line with
  | Error e -> Alcotest.failf "flight record is not valid JSON: %s\n%s" e line
  | Ok json ->
      let str k =
        Option.value ~default:"?"
          (Option.bind (Json.member k json) Json.to_string)
      in
      let num k =
        Option.map int_of_float
          (Option.bind (Json.member k json) Json.to_float)
      in
      check_string "id round-trips through escaping" "q \"quoted\"" (str "id");
      check_string "outcome" "error:injected_fault" (str "outcome");
      check_string "rung" "greedy" (str "rung");
      check_int "program digest is 12 hex chars" 12
        (String.length (str "program"));
      check_bool "seq assigned" true (num "seq" = Some 1);
      check_bool "iterations" true (num "iterations" = Some 7);
      check_bool "replans" true (num "replans" = Some 2);
      check_string "trace name" "trace-0001-q.json" (str "trace");
      (match Json.member "qerrors" json with
      | None -> Alcotest.fail "qerrors object missing"
      | Some q ->
          check_bool "finite q-error kept" true
            (Option.bind (Json.member "uniform" q) Json.to_float = Some 3.5);
          check_bool "nan q-error rendered null" true
            (match Json.member "chain" q with
            | Some Json.Null -> true
            | _ -> false));
      (* every schema field documented in DESIGN.md §15 is present *)
      List.iter
        (fun k ->
          check_bool (k ^ " present") true (Json.member k json <> None))
        [
          "seq"; "ts_us"; "id"; "op"; "outcome"; "program"; "plan"; "qos";
          "rung"; "queue_us"; "logical_us"; "physical_us"; "compile_us";
          "execute_us"; "total_us"; "compiles"; "kernels"; "cse_hits";
          "replans"; "iterations"; "qerrors"; "trace";
        ]

let test_write_jsonl () =
  let fl = Flight.create ~capacity:8 () in
  for i = 1 to 5 do
    ignore
      (Flight.note fl (Flight.empty_record ~id:(string_of_int i) ~op:"bind"))
  done;
  let path = Filename.temp_file "flight" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      check_int "write_jsonl returns the record count" 5
        (Flight.write_jsonl fl path);
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "five lines" 5 (List.length lines);
      List.iter
        (fun l ->
          match Json.parse l with
          | Ok _ -> ()
          | Error e -> Alcotest.failf "bad JSONL line: %s\n%s" e l)
        lines)

(* ------------------------------------------------------------------ *)
(* Sampler                                                              *)
(* ------------------------------------------------------------------ *)

(* Run one request through the sampler, emitting [spans] spans. *)
let one_request sm ~id ~duration_us ~triggers ~spans =
  Sampler.begin_request sm;
  for i = 1 to spans do
    Obs.span ~name:(Printf.sprintf "work%d" i) (fun () -> ())
  done;
  Sampler.end_request sm ~id ~duration_us ~triggers

let test_trigger_retention () =
  let was_on = Trace.enabled () in
  let sm = Sampler.create () in
  (* boring request below min_window: dropped *)
  let d = one_request sm ~id:"fine" ~duration_us:100 ~triggers:[] ~spans:2 in
  check_bool "uninteresting request dropped" false d.Sampler.kept;
  check_string "no reason" "" d.Sampler.reason;
  (* errored request: retained regardless of timing history *)
  let d =
    one_request sm ~id:"bad/id" ~duration_us:100
      ~triggers:[ "error"; "slow" ] ~spans:3
  in
  check_bool "errored request kept" true d.Sampler.kept;
  check_string "first trigger wins" "error" d.Sampler.reason;
  check_string "filename sanitized" "trace-0001-bad_id.json"
    d.Sampler.trace_name;
  (match Sampler.retained sm with
  | [ r ] ->
      check_string "retained id" "bad/id" r.Sampler.rt_id;
      check_int "spans captured" 3 (List.length r.Sampler.rt_events);
      check_bool "only this request's spans" true
        (List.for_all
           (fun e ->
             String.length e.Trace.ev_name >= 4
             && String.sub e.Trace.ev_name 0 4 = "work")
           r.Sampler.rt_events)
  | rs -> Alcotest.failf "expected 1 retained trace, got %d" (List.length rs));
  check_bool "sampler restores prior trace state" true
    (Trace.enabled () = was_on)

let test_slow_percentile () =
  let sm = Sampler.create ~min_window:8 ~percentile:0.9 () in
  (* a stable baseline of fast requests... *)
  for i = 1 to 20 do
    let d =
      one_request sm ~id:(Printf.sprintf "fast%d" i) ~duration_us:100
        ~triggers:[] ~spans:1
    in
    check_bool "baseline not retained" false d.Sampler.kept
  done;
  (match Sampler.slow_threshold sm with
  | None -> Alcotest.fail "threshold should exist after 20 samples"
  | Some th -> check_int "threshold is the baseline" 100 th);
  (* ...then one outlier: caught on its own completion, because the
     threshold is computed before the current duration enters the
     window *)
  let d =
    one_request sm ~id:"outlier" ~duration_us:50_000 ~triggers:[] ~spans:1
  in
  check_bool "outlier retained" true d.Sampler.kept;
  check_string "reason is slow" "slow" d.Sampler.reason

let test_retained_ring_and_dir () =
  let dir = temp_dir "sampler" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      let sm = Sampler.create ~dir ~max_keep:2 () in
      for i = 1 to 4 do
        ignore
          (one_request sm ~id:(Printf.sprintf "e%d" i) ~duration_us:10
             ~triggers:[ "error" ] ~spans:1)
      done;
      let rs = Sampler.retained sm in
      check_int "in-memory ring bounded" 2 (List.length rs);
      check_bool "newest kept, oldest first" true
        (List.map (fun r -> r.Sampler.rt_id) rs = [ "e3"; "e4" ]);
      (* every retained trace was also written to the directory, and is
         a parseable Chrome trace *)
      let files =
        List.sort compare
          (List.filter
             (fun f -> Filename.check_suffix f ".json")
             (Array.to_list (Sys.readdir dir)))
      in
      check_int "all four written to disk" 4 (List.length files);
      List.iter
        (fun f ->
          let ic = open_in (Filename.concat dir f) in
          let n = in_channel_length ic in
          let s = really_input_string ic n in
          close_in ic;
          match Json.parse s with
          | Ok json ->
              check_bool (f ^ " has traceEvents") true
                (Json.member "traceEvents" json <> None)
          | Error e -> Alcotest.failf "%s: %s" f e)
        files)

let test_keep_all_mode () =
  let sm = Sampler.create ~keep_all:true () in
  ignore (one_request sm ~id:"a" ~duration_us:10 ~triggers:[] ~spans:2);
  ignore (one_request sm ~id:"b" ~duration_us:10 ~triggers:[ "error" ] ~spans:3);
  let path = Filename.temp_file "keepall" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* keep_all accumulates both the dropped and the retained request *)
      check_int "write_all sees every span" 5 (Sampler.write_all sm path);
      let ic = open_in path in
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      check_bool "whole-run trace parses" true
        (match Json.parse s with Ok _ -> true | Error _ -> false))

(* ------------------------------------------------------------------ *)
(* Prometheus exposition                                                *)
(* ------------------------------------------------------------------ *)

let test_prometheus_text () =
  let c = Metrics.counter "test.prom.counter" in
  Metrics.add c 7;
  let g = Metrics.gauge "test.prom.gauge" in
  Metrics.set_gauge g 1.5;
  let h = Metrics.histogram "test.prom.hist" in
  List.iter (Metrics.observe h) [ 1; 1; 3; 200 ];
  let text = Metrics.dump_prometheus () in
  let has needle =
    let n = String.length needle and l = String.length text in
    let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
    go 0
  in
  (* names are sanitized into the galley_ namespace *)
  check_bool "counter line" true (has "galley_test_prom_counter 7\n");
  check_bool "counter TYPE" true
    (has "# TYPE galley_test_prom_counter counter\n");
  check_bool "gauge line" true (has "galley_test_prom_gauge 1.5\n");
  (* power-of-two buckets are cumulative: 1,1 -> le=1 is 2; 3 -> le=3
     is 3; 200 lands in le=255 with cumulative 4 *)
  check_bool "bucket le=1" true (has "galley_test_prom_hist_bucket{le=\"1\"} 2\n");
  check_bool "bucket le=3" true (has "galley_test_prom_hist_bucket{le=\"3\"} 3\n");
  check_bool "bucket le=255" true
    (has "galley_test_prom_hist_bucket{le=\"255\"} 4\n");
  check_bool "+Inf equals count" true
    (has "galley_test_prom_hist_bucket{le=\"+Inf\"} 4\n");
  check_bool "sum" true (has "galley_test_prom_hist_sum 205\n");
  check_bool "count" true (has "galley_test_prom_hist_count 4\n");
  (* no raw dots escape the sanitizer *)
  check_bool "no unsanitized names" true (not (has "test.prom"))

(* ------------------------------------------------------------------ *)
(* Journal                                                              *)
(* ------------------------------------------------------------------ *)

let test_journal_rotation () =
  let dir = temp_dir "journal" in
  Fun.protect
    ~finally:(fun () -> rm_rf dir)
    (fun () ->
      (* max_bytes clamps at 4096, so ~60 100-byte lines force at least
         one rotation *)
      let j = Journal.create ~dir ~max_bytes:1 () in
      let line = Printf.sprintf "{\"pad\":\"%s\"}" (String.make 88 'x') in
      for _ = 1 to 60 do
        Journal.append j ~file:"t.jsonl" line
      done;
      let path = Filename.concat dir "t.jsonl" in
      check_bool "live file exists" true (Sys.file_exists path);
      check_bool "rotated generation exists" true
        (Sys.file_exists (path ^ ".1"));
      check_bool "live file within cap" true
        ((Unix.stat path).Unix.st_size <= 4096);
      (* snapshot and audit_rows produce their conventional streams *)
      Journal.snapshot j;
      let ic = open_in (Filename.concat dir "metrics.jsonl") in
      let l = input_line ic in
      close_in ic;
      match Json.parse l with
      | Error e -> Alcotest.failf "snapshot line: %s" e
      | Ok json ->
          check_bool "snapshot has ts_us" true (Json.member "ts_us" json <> None);
          check_bool "snapshot embeds the registry" true
            (Json.member "metrics" json <> None))

(* ------------------------------------------------------------------ *)
(* Log context                                                          *)
(* ------------------------------------------------------------------ *)

let test_log_context_prefix () =
  let saved = Log.get_level () in
  let buf = ref [] in
  Log.set_sink (Some (fun _ m -> buf := m :: !buf));
  Log.set_level Log.Info;
  Log.set_context (Some "req-42");
  Log.info "with context";
  Log.set_context None;
  Log.info "without context";
  Log.set_level saved;
  Log.set_sink None;
  match List.rev !buf with
  | [ a; b ] ->
      check_bool "context prefixes the line" true
        (String.length a >= 9 && String.sub a 0 9 = "[req-42] ");
      check_bool "cleared context leaves lines bare" true
        (String.length b < 1 || b.[0] <> '[')
  | l -> Alcotest.failf "expected 2 sink messages, got %d" (List.length l)

(* ------------------------------------------------------------------ *)
(* Fixpoint iteration spans                                             *)
(* ------------------------------------------------------------------ *)

let test_fixpoint_iter_spans () =
  let was_on = Trace.enabled () in
  Trace.reset ();
  Trace.enable ();
  (match
     Fix.run_source_checked
       ~inputs:[ ("X", T.scalar 0.0) ]
       "X = iterate 3 { X := X + 1.0 }"
   with
  | Error e -> Alcotest.failf "fixpoint run failed: %s" (Galley.Errors.to_string e)
  | Ok _ -> ());
  let evs = Trace.drain () in
  if not was_on then Trace.disable ();
  let iters =
    List.filter (fun e -> e.Trace.ev_name = "fixpoint_iter:X") evs
  in
  check_int "one span per iteration" 3 (List.length iters);
  List.iter
    (fun e ->
      List.iter
        (fun k ->
          check_bool
            (Printf.sprintf "iteration span has %s attr" k)
            true
            (List.mem_assoc k e.Trace.ev_args))
        [ "iter"; "delta"; "replanned"; "compiles" ];
      check_string "straight 3-iteration loop never replans" "false"
        (List.assoc "replanned" e.Trace.ev_args))
    iters;
  let ord =
    List.sort compare
      (List.map (fun e -> List.assoc "iter" e.Trace.ev_args) iters)
  in
  check_bool "iterations numbered 1..3" true (ord = [ "1"; "2"; "3" ])

(* ------------------------------------------------------------------ *)
(* Recorder + sampler on must not perturb results                       *)
(* ------------------------------------------------------------------ *)

let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

let prop_recorder_identical =
  QCheck.Test.make
    ~name:"recorder+sampler on = off (bit-for-bit)" ~count:20
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let fmt () =
        match Prng.int prng 4 with
        | 0 -> T.Dense
        | 1 -> T.Sparse_list
        | 2 -> T.Bytemap
        | _ -> T.Hash
      in
      let n1 = 4 + Prng.int prng 8 and n2 = 4 + Prng.int prng 8 in
      let a =
        T.random ~prng ~dims:[| n1; n2 |]
          ~formats:[| fmt (); fmt () |]
          ~density:(Prng.float_range prng 0.15 0.6)
          ()
      in
      let v =
        T.random ~prng ~dims:[| n2 |] ~formats:[| fmt () |]
          ~density:(Prng.float_range prng 0.2 0.7)
          ()
      in
      let source =
        match Prng.int prng 3 with
        | 0 -> "out = sum[j](A[i,j] * v[j])"
        | 1 -> "out = sum[i,j](sigmoid(A[i,j]) * v[j])"
        | _ -> "w = sum[j](A[i,j] * v[j])\nout = sum[i](w[i] * w[i])"
      in
      let inputs = [ ("A", a); ("v", v) ] in
      List.iter
        (fun backend ->
          List.iter
            (fun domains ->
              let run () =
                match
                  D.run_source_checked
                    ~config:
                      {
                        D.default_config with
                        D.kernel_backend = backend;
                        domains;
                      }
                    ~inputs source
                with
                | Ok r -> D.output_of r "out"
                | Error e ->
                    QCheck.Test.fail_reportf "run failed: %s"
                      (Galley.Errors.to_string e)
              in
              (* plain run, no observability in the path *)
              let trace_was_on = Trace.enabled () in
              Trace.disable ();
              let off = run () in
              (* the serve-shaped path: sampler brackets the run (which
                 force-enables tracing), and a flight record is noted *)
              let fl = Flight.create ~capacity:4 () in
              let sm = Sampler.create () in
              Sampler.begin_request sm;
              let on = run () in
              let d =
                Sampler.end_request sm ~id:"prop" ~duration_us:10
                  ~triggers:[ "error" ]
              in
              ignore (Flight.note fl (Flight.empty_record ~id:"prop" ~op:"query"));
              if trace_was_on then Trace.enable ();
              if not d.Sampler.kept then
                QCheck.Test.fail_report "trigger should have retained";
              if not (bits_equal off on) then
                QCheck.Test.fail_reportf
                  "recorder+sampler perturbed outputs (backend %s, domains %d)"
                  (match backend with
                  | Exec.Staged -> "staged"
                  | Exec.Interp -> "interp")
                  domains)
            [ 1; 4 ])
        [ Exec.Staged; Exec.Interp ];
      true)

let () =
  Alcotest.run "flight"
    [
      ( "flight",
        [
          Alcotest.test_case "ring wrap and sequencing" `Quick
            test_ring_wrap_and_seq;
          Alcotest.test_case "record JSON schema" `Quick test_record_json_schema;
          Alcotest.test_case "write_jsonl dump" `Quick test_write_jsonl;
        ] );
      ( "sampler",
        [
          Alcotest.test_case "trigger retention and priority" `Quick
            test_trigger_retention;
          Alcotest.test_case "rolling-percentile slow trigger" `Quick
            test_slow_percentile;
          Alcotest.test_case "retained ring bound and trace files" `Quick
            test_retained_ring_and_dir;
          Alcotest.test_case "keep_all whole-run mode" `Quick
            test_keep_all_mode;
        ] );
      ( "prometheus",
        [ Alcotest.test_case "text exposition" `Quick test_prometheus_text ] );
      ( "journal",
        [ Alcotest.test_case "rotation and streams" `Quick test_journal_rotation ]
      );
      ( "log",
        [ Alcotest.test_case "request-id context prefix" `Quick
            test_log_context_prefix ] );
      ( "fixpoint",
        [
          Alcotest.test_case "iteration spans carry attrs" `Quick
            test_fixpoint_iter_spans;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_recorder_identical ] );
    ]
