(* Profiler and perf-stats layer: call-tree reconstruction from synthetic
   trace events (nesting, inclusive/exclusive invariants, clamping),
   collapsed-stack export shape, hot-kernel attribution rows, robust
   trial statistics, every `--compare` verdict unit, and the histogram
   percentile accessors the `--metrics` dump reports. *)

module Trace = Galley_obs.Trace
module Profile = Galley_obs.Profile
module P = Galley_obs.Perfstats
module Metrics = Galley_obs.Metrics
module Json = Galley_obs.Json
module Obs = Galley_obs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let check_float = Alcotest.(check (float 1e-9))

let ev ?(tid = 0) ?(cat = "t") ?(args = []) name ts dur : Trace.event =
  {
    Trace.ev_name = name;
    ev_cat = cat;
    ev_ph = 'X';
    ev_ts = ts;
    ev_dur = dur;
    ev_tid = tid;
    ev_args = args;
  }

(* root [0,1000] { a [100,400] { gc [150,250] }, b [500,900] } — shuffled
   input order, plus an instant that must be dropped. *)
let sample_events () =
  [
    ev "b" 500 400;
    ev "root" 0 1000;
    { (ev "mark" 600 0) with Trace.ev_ph = 'i' };
    ev "gc" 150 100;
    ev "a" 100 300;
  ]

(* ---------------------------------------------------------------- *)
(* Call-tree reconstruction.                                          *)
(* ---------------------------------------------------------------- *)

let test_tree_structure () =
  let forest = Profile.build (sample_events ()) in
  check_int "one root" 1 (List.length forest);
  let root = List.hd forest in
  check_string "root name" "root" root.Profile.p_name;
  check_int "root inclusive" 1000 root.Profile.p_incl_us;
  let names n = List.map (fun c -> c.Profile.p_name) n.Profile.p_children in
  Alcotest.(check (list string)) "children in start order" [ "a"; "b" ]
    (names root);
  let a = List.hd root.Profile.p_children in
  Alcotest.(check (list string)) "grandchild nests under a" [ "gc" ] (names a);
  check_int "a exclusive = incl - gc" 200 (Profile.exclusive_us a);
  check_int "root exclusive" 300 (Profile.exclusive_us root);
  check_int "gc is a leaf" 0 (List.length (List.hd a.Profile.p_children).Profile.p_children)

let check_invariants forest =
  Profile.iter_forest
    (fun n ->
      check_bool "exclusive >= 0" true (Profile.exclusive_us n >= 0);
      List.iter
        (fun c ->
          check_bool "child incl <= parent incl" true
            (c.Profile.p_incl_us <= n.Profile.p_incl_us);
          check_bool "child interval inside parent" true
            (c.Profile.p_start_us >= n.Profile.p_start_us
            && c.Profile.p_start_us + c.Profile.p_incl_us
               <= n.Profile.p_start_us + n.Profile.p_incl_us))
        n.Profile.p_children)
    forest

let test_tree_invariants () =
  let forest = Profile.build (sample_events ()) in
  check_invariants forest;
  check_int "total inclusive = root" 1000 (Profile.total_incl_us forest);
  (* On a well-nested synthetic trace, self times partition the root. *)
  check_int "total exclusive = total inclusive" 1000
    (Profile.total_excl_us forest)

let test_overlap_clamps () =
  (* Children contained in the parent but summing past it (the clock-
     granularity case): exclusive must clamp at zero, not go negative. *)
  let forest =
    Profile.build [ ev "p" 0 100; ev "c1" 0 60; ev "c2" 40 60 ]
  in
  check_int "one root" 1 (List.length forest);
  let p = List.hd forest in
  check_int "both contained children attach" 2
    (List.length p.Profile.p_children);
  check_int "exclusive clamped at zero" 0 (Profile.exclusive_us p);
  check_invariants forest

let test_domains_split_trees () =
  (* Same timestamps on two tids: two independent roots, never nested. *)
  let forest =
    Profile.build [ ev ~tid:1 "d1" 0 100; ev ~tid:2 "d2" 10 50 ]
  in
  check_int "two roots" 2 (List.length forest);
  Profile.iter_forest
    (fun n -> check_int "no cross-domain children" 0
        (List.length n.Profile.p_children))
    forest

let test_real_trace_invariants () =
  Trace.reset ();
  Trace.enable ();
  let sink = Sys.opaque_identity (ref 0.0) in
  Obs.span ~cat:"test" ~name:"outer" (fun () ->
      for _ = 1 to 3 do
        Obs.span ~cat:"test" ~name:"inner" (fun () ->
            for i = 1 to 20_000 do
              sink := !sink +. float_of_int i
            done)
      done);
  let forest = Profile.build (Trace.drain ()) in
  Trace.disable ();
  check_invariants forest;
  let incl = Profile.total_incl_us forest in
  let excl = Profile.total_excl_us forest in
  check_bool "some time was measured" true (incl > 0);
  (* Self times must account for the wall time under the root within
     tolerance (clamping can only add a few clock-granularity us). *)
  check_bool "self times sum to wall within 10%" true
    (abs (excl - incl) <= max 2 (incl / 10))

(* ---------------------------------------------------------------- *)
(* Rollups, collapsed stacks, hot-kernel table.                       *)
(* ---------------------------------------------------------------- *)

let test_rollups () =
  let forest =
    Profile.build
      [ ev "root" 0 100; ev "leaf" 10 20; ev "leaf" 50 30 ]
  in
  let rs = Profile.rollups forest in
  check_int "two distinct names" 2 (List.length rs);
  let top = List.hd rs in
  (* leaf: self 50 > root: self 50? root excl = 100-50 = 50; tie broken
     by name: "leaf" < "root". *)
  check_string "sorted by self then name" "leaf" top.Profile.r_name;
  check_int "count aggregates" 2 top.Profile.r_count;
  check_int "inclusive sums" 50 top.Profile.r_incl_us;
  check_int "exclusive sums" 50 top.Profile.r_excl_us

let test_collapsed_shape () =
  let forest = Profile.build (sample_events ()) in
  let out = Profile.collapsed forest in
  let lines = String.split_on_char '\n' (String.trim out) in
  check_int "one line per distinct stack" 4 (List.length lines);
  Alcotest.(check (list string))
    "sorted collapsed lines"
    [ "root 300"; "root;a 200"; "root;a;gc 100"; "root;b 400" ]
    lines;
  (* Every line is "frames <int>" and the values partition the root. *)
  let total =
    List.fold_left
      (fun acc line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.fail ("malformed line: " ^ line)
        | Some i ->
            acc
            + int_of_string
                (String.sub line (i + 1) (String.length line - i - 1)))
      0 lines
  in
  check_int "collapsed self times sum to wall" 1000 total

let test_collapsed_sanitizes_frames () =
  let forest = Profile.build [ ev "ker nel;x" 0 10 ] in
  check_string "';' and ' ' replaced in frames" "ker_nel,x 10\n"
    (Profile.collapsed forest)

let test_kernel_table () =
  let kargs merge =
    [
      ("kernel", "G");
      ("loop", "i,k");
      ("merge", merge);
      ("out_formats", "dense,sparse");
      ("backend", "staged");
    ]
  in
  let forest =
    Profile.build
      [
        ev "exec" 0 1000;
        ev ~args:(kargs "i:dense k:inter(dense&dense)") "kernel:G" 10 300;
        ev ~args:(kargs "i:dense k:inter(dense&dense)") "kernel:G" 400 200;
        ev ~args:(kargs "interp") "kernel:G" 700 100;
        ev "not_a_kernel" 900 50;
      ]
  in
  let rows = Profile.kernels forest in
  check_int "grouped by (kernel, loop, merge)" 2 (List.length rows);
  let top = List.hd rows in
  check_string "hottest row first" "G" top.Profile.k_kernel;
  check_string "merge attribution" "i:dense k:inter(dense&dense)"
    top.Profile.k_merge;
  check_int "count aggregates across calls" 2 top.Profile.k_count;
  check_int "inclusive sums" 500 top.Profile.k_incl_us;
  check_string "loop order carried" "i,k" top.Profile.k_loop;
  check_string "formats carried" "dense,sparse" top.Profile.k_formats;
  let interp = List.nth rows 1 in
  check_string "interp variant is a distinct row" "interp"
    interp.Profile.k_merge

(* ---------------------------------------------------------------- *)
(* Perfstats: summaries.                                              *)
(* ---------------------------------------------------------------- *)

let test_median_conventions () =
  check_float "odd length picks the middle" 2.0 (P.median_of [ 3.0; 1.0; 2.0 ]);
  check_float "even length takes the midpoint" 1.5
    (P.median_of [ 2.0; 1.0 ]);
  check_bool "empty is nan" true (Float.is_nan (P.median_of []))

let test_of_samples () =
  let s = P.of_samples [ 3.0; Float.nan; 1.0; 2.0; Float.nan ] in
  check_int "finite count" 3 s.P.n;
  check_int "nan samples counted as timeouts" 2 s.P.timeouts;
  check_float "median" 2.0 s.P.median;
  check_float "min" 1.0 s.P.min;
  check_float "max" 3.0 s.P.max;
  check_float "mad" 1.0 s.P.mad;
  check_float "spread" 2.0 (P.spread s);
  let all_t = P.of_samples [ Float.nan ] in
  check_int "all-timeout has n = 0" 0 all_t.P.n;
  check_int "all-timeout keeps the count" 1 all_t.P.timeouts

let test_noise_floor () =
  (* MAD = 0 (identical trials): the relative floor takes over. *)
  let s = P.of_samples [ 2.0; 2.0; 2.0 ] in
  check_float "rel floor on zero-MAD series" 0.2 (P.noise_floor s);
  (* Tiny medians bottom out at the absolute floor. *)
  let tiny = P.of_samples [ 1e-6; 1e-6 ] in
  check_float "absolute floor" 5e-4 (P.noise_floor tiny);
  (* Scattered trials: k * 1.4826 * MAD dominates. *)
  let wide = P.of_samples [ 1.0; 2.0; 3.0 ] in
  check_float "MAD term" (3.0 *. 1.4826 *. 1.0) (P.noise_floor wide)

(* ---------------------------------------------------------------- *)
(* Perfstats: every verdict unit.                                     *)
(* ---------------------------------------------------------------- *)

let verdict = Alcotest.testable
    (fun fmt v -> Format.pp_print_string fmt (P.verdict_to_string v))
    ( = )

let stats l = P.of_samples l

let test_verdict_regression () =
  Alcotest.check verdict "2x slowdown beyond noise" P.Regression
    (P.compare_stats
       ~baseline:(stats [ 1.0; 1.0; 1.0 ])
       ~current:(stats [ 2.0; 2.1; 2.0 ])
       ());
  Alcotest.check verdict "newly timing out regresses" P.Regression
    (P.compare_stats
       ~baseline:(stats [ 1.0 ])
       ~current:(stats [ Float.nan ])
       ())

let test_verdict_improvement () =
  Alcotest.check verdict "2x speedup beyond noise" P.Improvement
    (P.compare_stats
       ~baseline:(stats [ 2.0; 2.1; 2.0 ])
       ~current:(stats [ 1.0; 1.0; 1.0 ])
       ());
  Alcotest.check verdict "no longer timing out improves" P.Improvement
    (P.compare_stats
       ~baseline:(stats [ Float.nan ])
       ~current:(stats [ 1.0 ])
       ())

let test_verdict_within_noise () =
  Alcotest.check verdict "identical runs" P.Within_noise
    (P.compare_stats
       ~baseline:(stats [ 1.0; 1.01 ])
       ~current:(stats [ 0.99; 1.0 ])
       ());
  (* Dual condition: a delta past the noise floor but under the ratio
     threshold must NOT gate — this is what keeps back-to-back runs
     clean while still catching a genuine 2x. *)
  Alcotest.check verdict "1.4x stays under the 1.5x ratio bar"
    P.Within_noise
    (P.compare_stats
       ~baseline:(stats [ 1.0; 1.0; 1.0 ])
       ~current:(stats [ 1.4; 1.4; 1.4 ])
       ());
  Alcotest.check verdict "both all-timeout" P.Within_noise
    (P.compare_stats
       ~baseline:(stats [ Float.nan ])
       ~current:(stats [ Float.nan ])
       ())

let test_verdict_threshold_knob () =
  Alcotest.check verdict "lower threshold flips the verdict" P.Regression
    (P.compare_stats ~rel_threshold:1.2
       ~baseline:(stats [ 1.0; 1.0; 1.0 ])
       ~current:(stats [ 1.4; 1.4; 1.4 ])
       ())

let test_compare_keyed () =
  let baseline = [ ("a", stats [ 1.0 ]); ("gone", stats [ 1.0 ]) ] in
  let current = [ ("a", stats [ 1.0 ]); ("fresh", stats [ 1.0 ]) ] in
  let cs = P.compare_keyed baseline current in
  check_int "one row per key on either side" 3 (List.length cs);
  Alcotest.(check (list string))
    "current order first, then baseline-only"
    [ "a"; "fresh"; "gone" ]
    (List.map (fun c -> c.P.c_key) cs);
  let v key =
    (List.find (fun c -> c.P.c_key = key) cs).P.c_verdict
  in
  Alcotest.check verdict "matched key compares" P.Within_noise (v "a");
  Alcotest.check verdict "new series" P.New_series (v "fresh");
  Alcotest.check verdict "missing series" P.Missing_series (v "gone");
  check_int "count_verdict" 1 (P.count_verdict cs P.New_series)

(* ---------------------------------------------------------------- *)
(* Metrics: histogram percentiles.                                    *)
(* ---------------------------------------------------------------- *)

let test_percentiles () =
  let h = Metrics.histogram "test_perf.pctl" in
  check_float "empty histogram reports 0" 0.0 (Metrics.percentile h 0.5);
  for _ = 1 to 3 do
    Metrics.observe h 1
  done;
  Metrics.observe h 1000;
  (* Power-of-two buckets: ranks 1-3 land in bucket 0 (upper edge 1),
     rank 4 in bucket 9 (upper edge 1023). *)
  check_float "p50 from the small bucket" 1.0 (Metrics.percentile h 0.5);
  check_float "p99 from the large bucket" 1023.0 (Metrics.percentile h 0.99);
  check_float "p0 clamps to the first sample" 1.0 (Metrics.percentile h 0.0)

(* ---------------------------------------------------------------- *)
(* Json: the parser behind --compare.                                 *)
(* ---------------------------------------------------------------- *)

let test_json_roundtrip () =
  let src =
    "{\"schema\": 2, \"rows\": [{\"s\": \"a\\nb\", \"v\": [1, 2.5, null, "
    ^ "true]}], \"neg\": -3e-1}"
  in
  match Json.parse src with
  | Error e -> Alcotest.fail e
  | Ok j ->
      let open Json in
      check_float "int field" 2.0
        (Option.get (Option.bind (member "schema" j) to_float));
      let row =
        List.hd (Option.get (Option.bind (member "rows" j) to_list))
      in
      check_string "escaped string decodes" "a\nb"
        (Option.get (Option.bind (member "s" row) to_string));
      let v = Option.get (Option.bind (member "v" row) to_list) in
      check_int "array arity" 4 (List.length v);
      check_bool "null is Null" true (List.nth v 2 = Null);
      check_float "negative exponent" (-0.3)
        (Option.get (Option.bind (member "neg" j) to_float));
      check_bool "garbage is an error" true
        (match Json.parse "{\"a\": }" with Error _ -> true | Ok _ -> false)

let () =
  Alcotest.run "perf"
    [
      ( "profile-tree",
        [
          Alcotest.test_case "nesting reconstruction" `Quick
            test_tree_structure;
          Alcotest.test_case "inclusive/exclusive invariants" `Quick
            test_tree_invariants;
          Alcotest.test_case "exclusive clamps at zero" `Quick
            test_overlap_clamps;
          Alcotest.test_case "domains build separate trees" `Quick
            test_domains_split_trees;
          Alcotest.test_case "real trace invariants" `Quick
            test_real_trace_invariants;
        ] );
      ( "exports",
        [
          Alcotest.test_case "rollup aggregation" `Quick test_rollups;
          Alcotest.test_case "collapsed-stack shape" `Quick
            test_collapsed_shape;
          Alcotest.test_case "collapsed frame sanitizing" `Quick
            test_collapsed_sanitizes_frames;
          Alcotest.test_case "hot-kernel attribution rows" `Quick
            test_kernel_table;
        ] );
      ( "perfstats",
        [
          Alcotest.test_case "median conventions" `Quick
            test_median_conventions;
          Alcotest.test_case "of_samples with timeouts" `Quick
            test_of_samples;
          Alcotest.test_case "noise floor" `Quick test_noise_floor;
          Alcotest.test_case "verdict: regression" `Quick
            test_verdict_regression;
          Alcotest.test_case "verdict: improvement" `Quick
            test_verdict_improvement;
          Alcotest.test_case "verdict: within-noise" `Quick
            test_verdict_within_noise;
          Alcotest.test_case "verdict: threshold knob" `Quick
            test_verdict_threshold_knob;
          Alcotest.test_case "keyed join: new/missing" `Quick
            test_compare_keyed;
        ] );
      ( "metrics",
        [ Alcotest.test_case "histogram percentiles" `Quick test_percentiles ]
      );
      ("json", [ Alcotest.test_case "parser round-trip" `Quick
                   test_json_roundtrip ]);
    ]
