(* Optimizer provenance (DESIGN.md §16): recorder gating and drain
   semantics, the digest-keyed retention store, structural plan
   diffing, the offline audit-report reduction over a committed journal
   fixture, and the property that recording the search leaves both the
   chosen plans and the program outputs bit-identical across kernel
   backends and domain counts. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Prov = Galley_plan.Provenance
module Diff = Galley_plan.Plan_diff
module Physical = Galley_plan.Physical
module Json = Galley_obs.Json
module Metrics = Galley_obs.Metrics
module AR = Galley_obs.Audit_report
module Exec = Galley_engine.Exec
module D = Galley.Driver

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)
let close what = Alcotest.(check (float 1e-9)) what

let contains (text : string) (needle : string) : bool =
  let n = String.length needle and l = String.length text in
  let rec go i = i + n <= l && (String.sub text i n = needle || go (i + 1)) in
  n = 0 || go 0

(* -------------------------------------------------------------- *)
(* Recorder.                                                        *)
(* -------------------------------------------------------------- *)

let test_recorder_gating () =
  Prov.disable ();
  Prov.reset ();
  Prov.candidate ~phase:"logical" ~query:"q" ~tier:"greedy" ~descr:"x"
    ~cost:1.0 ~chosen:true ();
  check_int "disabled records nothing" 0 (List.length (Prov.drain ()));
  Prov.enable ();
  Prov.rung ~phase:"logical" ~query:"q" ~tier:"exact" ~outcome:"served"
    ~nodes:7 ~cost:3.5 ();
  Prov.prune ~phase:"logical" ~query:"q" ~tier:"exact" ~reason:"bound"
    ~count:2 ();
  let evs = Prov.drain () in
  check_int "two events" 2 (List.length evs);
  (match evs with
  | [ r; p ] ->
      check_string "oldest first" "rung" r.Prov.pv_kind;
      check_bool "served rung is chosen" true r.Prov.pv_chosen;
      check_string "node count attr" "7"
        (List.assoc "nodes" r.Prov.pv_attrs);
      check_string "prune count attr" "2"
        (List.assoc "count" p.Prov.pv_attrs)
  | _ -> Alcotest.fail "expected exactly two events");
  check_int "drain empties the buffer" 0 (List.length (Prov.drain ()));
  Prov.disable ()

let test_event_json () =
  Prov.reset ();
  Prov.enable ();
  Prov.candidate ~phase:"physical" ~query:"q" ~tier:"greedy"
    ~descr:"loop i,j" ~cost:12.5 ~chosen:true ();
  Prov.prune ~phase:"physical" ~query:"q" ~tier:"exact" ~reason:"bound" ();
  let evs = Prov.drain () in
  Prov.disable ();
  let json = Prov.events_to_json evs in
  match Json.parse json with
  | Error msg -> Alcotest.failf "events_to_json not parseable: %s" msg
  | Ok j -> (
      match Json.to_list j with
      | Some [ cand; prune ] ->
          let str k e = Option.bind (Json.member k e) Json.to_string in
          check_bool "candidate kind" true (str "kind" cand = Some "candidate");
          check_bool "candidate cost" true
            (Option.bind (Json.member "cost" cand) Json.to_float = Some 12.5);
          check_bool "chosen flag" true
            (Json.member "chosen" cand <> None);
          (* prune has nan cost: the field must be omitted, not "nan" *)
          check_bool "nan cost omitted" true (Json.member "cost" prune = None)
      | _ -> Alcotest.fail "expected a two-element JSON array")

let test_store () =
  let s = Prov.Store.create ~capacity:2 () in
  Prov.Store.put s ~digest:"aaa" "{\"v\":1}";
  Prov.Store.put s ~digest:"bbb" "{\"v\":2}";
  check_bool "get aaa" true (Prov.Store.get s "aaa" = Some "{\"v\":1}");
  (* refreshing an existing digest must not evict the other entry *)
  Prov.Store.put s ~digest:"aaa" "{\"v\":3}";
  check_bool "aaa refreshed" true (Prov.Store.get s "aaa" = Some "{\"v\":3}");
  check_bool "bbb survives refresh" true
    (Prov.Store.get s "bbb" = Some "{\"v\":2}");
  (* a genuinely new digest evicts the oldest slot *)
  Prov.Store.put s ~digest:"ccc" "{\"v\":4}";
  check_int "capacity bounded" 2 (List.length (Prov.Store.digests s));
  check_bool "miss is None" true (Prov.Store.get s "zzz" = None)

(* -------------------------------------------------------------- *)
(* Plan diff.                                                       *)
(* -------------------------------------------------------------- *)

let mk_kernel ?(name = "k") ?(loop = [ "i"; "j" ])
    ?(formats = [| T.Dense; T.Sparse_list |]) () : Physical.step =
  Physical.Kernel
    {
      Physical.name;
      loop_order = loop;
      agg_op = Galley_plan.Op.Ident;
      agg_idxs = [];
      output_idxs = loop;
      output_dims = Array.make (List.length loop) 4;
      output_formats = formats;
      loop_dims = Array.make (List.length loop) 4;
      body = Physical.P_literal 1.0;
      accesses = [||];
      body_fill = 0.0;
      output_fill = 0.0;
      agg_space = 1.0;
    }

let test_diff_identical () =
  let p = [ mk_kernel (); mk_kernel ~name:"m" ~loop:[ "x" ] () ] in
  check_int "no changes" 0 (List.length (Diff.diff p p));
  check_string "summary" "identical" (Diff.summary (Diff.diff p p))

let test_diff_loop_reorder () =
  let before = [ mk_kernel ~loop:[ "i"; "j" ] () ] in
  let after = [ mk_kernel ~loop:[ "j"; "i" ] () ] in
  match Diff.diff before after with
  | [ Diff.Loop_order { kernel; before = b; after = a } ] ->
      check_string "kernel" "k" kernel;
      check_string "before order" "i,j" b;
      check_string "after order" "j,i" a;
      check_bool "summary names the flip" true
        (contains (Diff.summary (Diff.diff before after)) "loops [i,j]->[j,i]")
  | cs ->
      Alcotest.failf "expected one Loop_order change, got: %s"
        (Diff.summary cs)

let test_diff_format_change () =
  let before = [ mk_kernel ~formats:[| T.Dense; T.Sparse_list |] () ] in
  let after = [ mk_kernel ~formats:[| T.Dense; T.Hash |] () ] in
  match Diff.diff before after with
  | [ Diff.Formats { name; before = b; after = a } ] ->
      check_string "kernel" "k" name;
      check_bool "before formats" true (contains b "sparse");
      check_bool "after formats" true (contains a "hash")
  | cs ->
      Alcotest.failf "expected one Formats change, got: %s" (Diff.summary cs)

let test_diff_steps_and_kind () =
  let a = mk_kernel ~name:"a" () and b = mk_kernel ~name:"b" () in
  (match Diff.diff [ a ] [ a; b ] with
  | [ Diff.Step_added "b" ] -> ()
  | cs -> Alcotest.failf "expected Step_added b, got: %s" (Diff.summary cs));
  (match Diff.diff [ a; b ] [ a ] with
  | [ Diff.Step_removed "b" ] -> ()
  | cs -> Alcotest.failf "expected Step_removed b, got: %s" (Diff.summary cs));
  let t =
    Physical.Transpose
      {
        name = "a";
        source = "s";
        source_kind = `Input;
        perm = [| 1; 0 |];
        formats = [| T.Sparse_list; T.Sparse_list |];
      }
  in
  match Diff.diff [ a ] [ t ] with
  | [ Diff.Kind_changed "a" ] -> ()
  | cs -> Alcotest.failf "expected Kind_changed a, got: %s" (Diff.summary cs)

(* -------------------------------------------------------------- *)
(* Audit-report reduction over the committed fixture journal.       *)
(* -------------------------------------------------------------- *)

let test_audit_report_golden () =
  let samples = AR.load_dir "fixtures" in
  (* 4 parseable rows; the garbage line is skipped, not fatal *)
  check_int "samples loaded" 4 (List.length samples);
  let gs = AR.groups samples in
  (* (A, uniform) has a prediction but no actual -> no q-errors -> the
     group is dropped; (A, chain) and (B, chain) remain, sorted *)
  check_int "two groups" 2 (List.length gs);
  (match gs with
  | [ a; b ] ->
      check_string "group order" "A" a.AR.ar_query;
      check_string "group order" "B" b.AR.ar_query;
      check_int "A count" 2 a.AR.ar_count;
      (* q-errors 2 and 4: geo-mean sqrt(8), max 4, early half [2],
         late half [4]; corrections 20/10 and 10/40: geo sqrt(1/2) *)
      close "A geo q" (sqrt 8.0) a.AR.ar_geo_q;
      close "A max q" 4.0 a.AR.ar_max_q;
      close "A early q" 2.0 a.AR.ar_early_q;
      close "A late q" 4.0 a.AR.ar_late_q;
      close "A correction" (sqrt 0.5) a.AR.ar_correction;
      check_int "B count" 1 b.AR.ar_count;
      close "B geo q" 1.0 b.AR.ar_geo_q;
      close "B correction" 1.0 b.AR.ar_correction
  | _ -> Alcotest.fail "expected groups for (A,chain) and (B,chain)");
  let text = AR.render gs in
  check_bool "render has header" true (contains text "correction");
  check_bool "render lists A" true (contains text "A");
  match Json.parse (AR.to_json gs) with
  | Error msg -> Alcotest.failf "to_json not parseable: %s" msg
  | Ok j -> (
      match Option.bind (Json.member "groups" j) Json.to_list with
      | Some l -> check_int "json groups" 2 (List.length l)
      | None -> Alcotest.fail "missing groups array")

(* -------------------------------------------------------------- *)
(* Prometheus HELP lines and the p99.9 snapshot column.              *)
(* -------------------------------------------------------------- *)

let test_prometheus_help_and_p999 () =
  let h =
    Metrics.histogram "provtest.latency_us" ~help:"Provenance test histogram."
  in
  Metrics.observe h 100;
  let snap = Metrics.snapshot () in
  check_bool "p999 column present" true
    (List.mem_assoc "provtest.latency_us.p999" snap);
  let text = Metrics.dump_prometheus () in
  check_bool "declared HELP text used" true
    (contains text
       "# HELP galley_provtest_latency_us Provenance test histogram.");
  check_bool "HELP precedes TYPE" true
    (contains text
       "# HELP galley_provtest_latency_us Provenance test histogram.\n\
        # TYPE galley_provtest_latency_us histogram")

(* -------------------------------------------------------------- *)
(* Recording must not perturb plans or results (bit-for-bit).        *)
(* -------------------------------------------------------------- *)

let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

let prop_provenance_identical =
  QCheck.Test.make
    ~name:"provenance on = provenance off (plans and outputs bit-for-bit)"
    ~count:25
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let fmt () =
        match Prng.int prng 4 with
        | 0 -> T.Dense
        | 1 -> T.Sparse_list
        | 2 -> T.Bytemap
        | _ -> T.Hash
      in
      let n1 = 4 + Prng.int prng 8 and n2 = 4 + Prng.int prng 8 in
      let a =
        T.random ~prng ~dims:[| n1; n2 |]
          ~formats:[| fmt (); fmt () |]
          ~density:(Prng.float_range prng 0.15 0.6)
          ()
      in
      let v =
        T.random ~prng ~dims:[| n2 |] ~formats:[| fmt () |]
          ~density:(Prng.float_range prng 0.2 0.7)
          ()
      in
      let source =
        match Prng.int prng 3 with
        | 0 -> "out = sum[j](A[i,j] * v[j])"
        | 1 -> "out = sum[i,j](sigmoid(A[i,j]) * v[j])"
        | _ -> "w = sum[j](A[i,j] * v[j])\nout = sum[i](w[i] * w[i])"
      in
      let inputs = [ ("A", a); ("v", v) ] in
      List.iter
        (fun backend ->
          List.iter
            (fun domains ->
              let run () =
                match
                  D.run_source_checked
                    ~config:
                      {
                        D.default_config with
                        D.kernel_backend = backend;
                        domains;
                      }
                    ~inputs source
                with
                | Ok r ->
                    (Physical.plan_to_string r.D.physical_plan,
                     D.output_of r "out")
                | Error e ->
                    QCheck.Test.fail_reportf "run failed: %s"
                      (Galley.Errors.to_string e)
              in
              Prov.disable ();
              Prov.reset ();
              let plan_off, off = run () in
              Prov.enable ();
              let plan_on, on = run () in
              let events = List.length (Prov.drain ()) in
              Prov.disable ();
              if events = 0 then
                QCheck.Test.fail_reportf
                  "enabled recorder captured no events";
              if plan_off <> plan_on then
                QCheck.Test.fail_reportf
                  "provenance changed the plan (backend %s, domains %d):\n\
                   off:\n%s\non:\n%s"
                  (match backend with
                  | Exec.Staged -> "staged"
                  | Exec.Interp -> "interp")
                  domains plan_off plan_on;
              if not (bits_equal off on) then
                QCheck.Test.fail_reportf
                  "provenance perturbed outputs (backend %s, domains %d)"
                  (match backend with
                  | Exec.Staged -> "staged"
                  | Exec.Interp -> "interp")
                  domains)
            [ 1; 4 ])
        [ Exec.Staged; Exec.Interp ];
      true)

let () =
  Alcotest.run "provenance"
    [
      ( "recorder",
        [
          Alcotest.test_case "gating and drain" `Quick test_recorder_gating;
          Alcotest.test_case "event json shape" `Quick test_event_json;
          Alcotest.test_case "digest store" `Quick test_store;
        ] );
      ( "plan-diff",
        [
          Alcotest.test_case "identical plans" `Quick test_diff_identical;
          Alcotest.test_case "loop reorder" `Quick test_diff_loop_reorder;
          Alcotest.test_case "format change" `Quick test_diff_format_change;
          Alcotest.test_case "steps and kind" `Quick test_diff_steps_and_kind;
        ] );
      ( "audit-report",
        [
          Alcotest.test_case "fixture golden" `Quick test_audit_report_golden;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "prometheus help and p999" `Quick
            test_prometheus_help_and_p999;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_provenance_identical ] );
    ]
