(* Fixpoint subsystem tests: iterate parsing and validation, the
   error taxonomy for divergence (iteration cap, wall-clock deadline),
   bit-for-bit equivalence of [iterate] against hand-unrolled
   straight-line references across backends and domain counts, and the
   repeated-application audit for non-(+,x) aggregates (Min/Max/Or/And)
   through the logical elimination rules. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Canonical = Galley_plan.Canonical
module D = Galley.Driver
module E = Galley.Errors
module Reference = Galley.Reference
module Exec = Galley_engine.Exec
module Fix = Galley_fixpoint.Fixpoint
module I = Galley_workloads.Iterative
module G = Galley_workloads.Graphs
module Bfs = Galley_workloads.Bfs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* Bit-for-bit equality of the dense images (and of fills/dims). *)
let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

(* The backend x domains matrix of satellite 3. *)
let equivalence_configs : (string * D.config) list =
  [
    ("staged-1", D.default_config);
    ("staged-4", { D.default_config with domains = 4 });
    ("interp-1", { D.default_config with kernel_backend = Exec.Interp });
    ( "interp-4",
      { D.default_config with kernel_backend = Exec.Interp; domains = 4 } );
  ]

(* ------------------------------------------------------------------ *)
(* Parsing                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_iterate () =
  (match Fix.parse_checked (I.pagerank_source ()) with
  | Error e -> Alcotest.failf "pagerank_source: %s" (E.to_string e)
  | Ok p -> (
      check_bool "one output" true (p.Ir.xoutputs = [ "R" ]);
      match p.Ir.stmts with
      | [ Ir.Fix_stmt f ] ->
          check_bool "fix name" true (f.Ir.fix_name = "R");
          check_bool "has cap" true (f.Ir.fix_max_iters = Some 100);
          check_bool "has cond" true (f.Ir.fix_cond <> None)
      | _ -> Alcotest.fail "expected a single Fix_stmt"));
  match Fix.parse_checked (I.bellman_source ()) with
  | Error e -> Alcotest.failf "bellman_source: %s" (E.to_string e)
  | Ok _ -> ()

let expect_parse_error label src =
  match Fix.parse_checked src with
  | Error (E.Parse_error _) -> ()
  | Error e ->
      Alcotest.failf "%s: wrong taxonomy class: %s" label (E.to_string e)
  | Ok _ -> Alcotest.failf "%s: parsed but should not" label

let test_parse_rejects () =
  expect_parse_error "no count or cond" "X = iterate { X := X + 1 }";
  expect_parse_error "zero count" "X = iterate 0 { X := X + 1 }";
  expect_parse_error "negative cap" "X = iterate max 0 until X < 1.0 { X := X + 1 }";
  expect_parse_error "no carried update" "X = iterate 3 { Y = X + 1 }";
  expect_parse_error "result not carried" "X = iterate 3 { Y := X + 1 }";
  expect_parse_error "assign-update at top level" "X := X + 1";
  (* The straight-line driver refuses iterate programs with a pointer
     to the fixpoint driver, instead of a generic syntax error. *)
  match D.parse_checked "X = iterate 3 { X := X + 1 }" with
  | Error (E.Parse_error { message; _ }) ->
      check_bool "mentions fixpoint driver" true
        (let lower = String.lowercase_ascii message in
         let has needle =
           let nl = String.length needle and ll = String.length lower in
           let rec go i = i + nl <= ll && (String.sub lower i nl = needle || go (i + 1)) in
           go 0
         in
         has "fixpoint")
  | Error e -> Alcotest.failf "wrong class: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "straight-line driver accepted iterate"

(* Straight-line programs still parse through the fixpoint entry point
   and run identically (the daemon routes everything through it). *)
let test_straightline_passthrough () =
  let prng = Prng.create 5 in
  let a = T.random ~prng ~dims:[| 8; 6 |] ~formats:[| T.Dense; T.Sparse_list |] ~density:0.5 () in
  let src = "t[i] = sumof[j](A[i,j])" in
  match Fix.run_source_checked ~inputs:[ ("A", a) ] src with
  | Error e -> Alcotest.failf "passthrough: %s" (E.to_string e)
  | Ok (res, reports) ->
      check_int "no fixpoint reports" 0 (List.length reports);
      let prog = Galley_lang.Parser.parse_program src in
      let expected = List.assoc "t" (Reference.eval_program [ ("A", a) ] prog) in
      check_bool "values" true (T.equal_approx ~eps:1e-9 (D.output_of res "t") expected)

(* ------------------------------------------------------------------ *)
(* Runtime validation (taxonomy: Plan_invalid)                          *)
(* ------------------------------------------------------------------ *)

let expect_plan_invalid label ~inputs src =
  match Fix.run_source_checked ~inputs src with
  | Error (E.Plan_invalid _) -> ()
  | Error e ->
      Alcotest.failf "%s: wrong taxonomy class: %s" label (E.to_string e)
  | Ok _ -> Alcotest.failf "%s: ran but should not" label

let test_runtime_validation () =
  let x = T.scalar 0.0 in
  let v = T.of_fun ~dims:[| 4 |] ~formats:[| T.Dense |] (fun _ -> 1.0) in
  expect_plan_invalid "carried unbound" ~inputs:[]
    "X = iterate 2 { X := X + 1 }";
  expect_plan_invalid "duplicate update" ~inputs:[ ("X", x) ]
    "X = iterate 2 { X := X + 1\nX := X * 2 }";
  expect_plan_invalid "= and := clash" ~inputs:[ ("X", x); ("Z", x) ]
    "X = iterate 2 { X := X + 1\nZ = X\nZ := Z + 1 }";
  expect_plan_invalid "non-scalar until" ~inputs:[ ("X", v) ]
    "X = iterate max 5 until X[i] - X'[i] { X[i] := X[i] * 0.5 }"

(* ------------------------------------------------------------------ *)
(* Divergence taxonomy                                                  *)
(* ------------------------------------------------------------------ *)

let test_max_iters_hit () =
  match
    Fix.run_source_checked ~inputs:[ ("X", T.scalar 0.0) ]
      "X = iterate max 3 until X < 0.0 { X := X + 1 }"
  with
  | Error (E.Fixpoint_diverged { iterations; _ }) ->
      check_int "gave up after the cap" 3 iterations
  | Error e -> Alcotest.failf "wrong taxonomy class: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "should have diverged"

let test_deadline_hit () =
  (* A convergence condition that can never hold, under a wall-clock
     budget far too small for the iteration cap: the loop must stop
     with the divergence error, not run the full million iterations. *)
  let config = { D.default_config with timeout = Some 1e-4 } in
  match
    Fix.run_source_checked ~config ~inputs:[ ("X", T.scalar 0.0) ]
      "X = iterate max 1000000 until X < 0.0 { X := X + 1 }"
  with
  | Error (E.Fixpoint_diverged { iterations; _ }) ->
      check_bool "stopped well before the cap" true (iterations < 1000000)
  | Error e -> Alcotest.failf "wrong taxonomy class: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "should have hit the deadline"

let test_fixed_count_completes () =
  match
    Fix.run_source_checked ~inputs:[ ("X", T.scalar 0.0) ]
      "X = iterate 3 { X := X + 1 }"
  with
  | Error e -> Alcotest.failf "fixed count: %s" (E.to_string e)
  | Ok (res, [ r ]) ->
      check_int "iterations" 3 r.Fix.fr_iterations;
      check_bool "fixed count converges by definition" true r.Fix.fr_converged;
      check_float "value" 3.0 (T.scalar_value (D.output_of res "X"))
  | Ok _ -> Alcotest.fail "expected exactly one report"

(* ------------------------------------------------------------------ *)
(* Bit-for-bit equivalence vs hand-unrolled references (satellite 3)    *)
(* ------------------------------------------------------------------ *)

let check_unrolled_equal label ~config ~inputs ~carried ~body_src (res, rep) =
  let unrolled =
    I.unrolled_run ~config ~inputs ~carried ~body_src
      ~iters:rep.Fix.fr_iterations ()
  in
  List.iter
    (fun x ->
      check_bool
        (Printf.sprintf "%s: %s bit-identical after %d iters" label x
           rep.Fix.fr_iterations)
        true
        (bits_equal (D.output_of res x) (List.assoc x unrolled)))
    carried

let fixpoint_vs_unrolled ~label ~src ~inputs ~carried ~body_src =
  List.iter
    (fun (cname, config) ->
      match Fix.run_source_checked ~config ~inputs src with
      | Error e -> Alcotest.failf "%s/%s: %s" label cname (E.to_string e)
      | Ok (_, []) -> Alcotest.failf "%s/%s: no report" label cname
      | Ok (res, rep :: _) ->
          check_unrolled_equal
            (label ^ "/" ^ cname)
            ~config ~inputs ~carried ~body_src (res, rep))
    equivalence_configs

let prop_pagerank_matches_unrolled =
  QCheck.Test.make ~name:"fixpoint pagerank == hand-unrolled, bit for bit"
    ~count:6
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let g = G.erdos_renyi ~seed ~n:60 ~m:240 () in
      let inputs = I.pagerank_inputs g in
      fixpoint_vs_unrolled ~label:"pagerank"
        ~src:(I.pagerank_source ~eps:1e-6 ~max_iters:60 ())
        ~inputs ~carried:[ "R" ] ~body_src:I.pagerank_body;
      true)

let prop_bellman_matches_unrolled =
  QCheck.Test.make ~name:"fixpoint bellman-ford == hand-unrolled, bit for bit"
    ~count:6
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let g = G.symmetrize (G.power_law ~seed ~n:50 ~m:160 ()) in
      let inputs = I.bellman_inputs ~seed g ~source:0 in
      fixpoint_vs_unrolled ~label:"bellman"
        ~src:(I.bellman_source ~max_iters:60 ())
        ~inputs ~carried:[ "D" ] ~body_src:I.bellman_body;
      true)

(* Fixed-count, multi-statement body with an iteration-local
   intermediate (Z): the GCN forward pass. *)
let test_gcn_matches_unrolled () =
  let g = G.erdos_renyi ~seed:19 ~n:80 ~m:480 () in
  let inputs = I.gcn_inputs ~seed:23 g ~features:8 in
  fixpoint_vs_unrolled ~label:"gcn"
    ~src:(I.gcn_source ~layers:3 ())
    ~inputs ~carried:[ "H" ] ~body_src:I.gcn_body

(* Reachability over the boolean semiring: converged visited-set size
   must equal the brute-force BFS count. *)
let test_reach_matches_bfs () =
  let g = G.symmetrize (G.power_law ~seed:31 ~n:400 ~m:1200 ()) in
  let inputs = I.reach_inputs g ~source:0 in
  match Fix.run_source_checked ~inputs (I.reach_source ()) with
  | Error e -> Alcotest.failf "reach: %s" (E.to_string e)
  | Ok (res, [ r ]) ->
      check_bool "converged" true r.Fix.fr_converged;
      let visited = I.checksum (D.output_of res "V") in
      let expected =
        float_of_int
          (Bfs.reference_visited ~adjacency:(List.assoc "A" inputs) ~source:0)
      in
      check_float "visited count == BFS" expected visited
  | Ok _ -> Alcotest.fail "expected exactly one report"

(* ------------------------------------------------------------------ *)
(* Repeated-application audit (satellite 1)                             *)
(* ------------------------------------------------------------------ *)

let lit n = Ir.Literal n
let x = Ir.Input ("x", [])

let test_repeat_expr () =
  let eq = Alcotest.(check bool) in
  eq "Add -> x * n" true
    (Ir.repeat_expr Op.Add x 3 = Some (Ir.Map (Op.Mul, [ x; lit 3.0 ])));
  eq "Mul -> x ^ n" true
    (Ir.repeat_expr Op.Mul x 3 = Some (Ir.Map (Op.Pow, [ x; lit 3.0 ])));
  eq "Max idempotent" true (Ir.repeat_expr Op.Max x 5 = Some x);
  eq "Min idempotent" true (Ir.repeat_expr Op.Min x 5 = Some x);
  (* Or/And are idempotent only up to truthiness: repeating must
     normalize to 0/1, not return the raw child. *)
  eq "Or -> x != 0" true
    (Ir.repeat_expr Op.Or x 4 = Some (Ir.Map (Op.Neq, [ x; lit 0.0 ])));
  eq "And -> x != 0" true
    (Ir.repeat_expr Op.And x 4 = Some (Ir.Map (Op.Neq, [ x; lit 0.0 ])));
  eq "no form for Sub" true (Ir.repeat_expr Op.Sub x 2 = None);
  eq "n = 0 has no form" true (Ir.repeat_expr Op.Add x 0 = None)

(* [Canonical.simplify]'s absent-index wrapping must use the
   repeated-application form, not drop the aggregate (the pre-fix Or
   behavior returned the unnormalized child). *)
let test_simplify_absent_index () =
  let dims = Ir.Idx_map.singleton "i" 4 in
  let agg op = Ir.Agg (op, [ "i" ], x) in
  check_bool "sum over absent i -> x * 4" true
    (Canonical.simplify dims (agg Op.Add) = Ir.Map (Op.Mul, [ x; lit 4.0 ]));
  check_bool "max over absent i -> x" true
    (Canonical.simplify dims (agg Op.Max) = x);
  check_bool "or over absent i -> x != 0" true
    (Canonical.simplify dims (agg Op.Or) = Ir.Map (Op.Neq, [ x; lit 0.0 ]))

(* End-to-end: Agg(op, [i,j], Map(op, [A[i,j]; B[j]])) puts the B term
   through elimination's repeated-application path (i is absent from it
   and its dimension is known from A).  Non-boolean values in B make
   the old silently-wrong rewrites for Or/And observable. *)
let elim_configs : (string * D.config) list =
  [
    ("default", D.default_config);
    ("greedy", D.greedy_config);
    ( "no-distribute",
      {
        D.default_config with
        logical =
          {
            Galley_logical.Optimizer.default_config with
            try_distribute = false;
          };
      } );
  ]

let check_elim_regression op_name op =
  let prng = Prng.create 77 in
  let a =
    T.random ~prng ~dims:[| 6; 5 |] ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.7 ~value_lo:0.5 ~value_hi:2.5 ()
  in
  let b =
    T.random ~prng ~dims:[| 5 |] ~formats:[| T.Dense |] ~density:0.8
      ~value_lo:0.5 ~value_hi:2.5 ()
  in
  let inputs = [ ("A", a); ("B", b) ] in
  let expr =
    Ir.Agg
      ( op,
        [ "i"; "j" ],
        Ir.Map (op, [ Ir.Input ("A", [ "i"; "j" ]); Ir.Input ("B", [ "j" ]) ])
      )
  in
  let prog =
    { Ir.queries = [ { Ir.name = "t"; expr; out_order = None } ]; outputs = [ "t" ] }
  in
  let expected = List.assoc "t" (Reference.eval_program inputs prog) in
  List.iter
    (fun (cname, config) ->
      let res = D.run ~config ~inputs prog in
      let got = D.output_of res "t" in
      check_bool
        (Printf.sprintf "agg %s of map %s matches reference under %s" op_name
           op_name cname)
        true
        (T.equal_approx ~eps:1e-6 got expected))
    elim_configs

let test_elimination_semirings () =
  List.iter
    (fun (name, op) -> check_elim_regression name op)
    [
      ("Add", Op.Add);
      ("Max", Op.Max);
      ("Min", Op.Min);
      ("Or", Op.Or);
      ("And", Op.And);
    ]

(* ------------------------------------------------------------------ *)
(* Surface-syntax regressions: abs, binary min/max (satellite 6)        *)
(* ------------------------------------------------------------------ *)

let check_source_vs_reference label ~inputs src out =
  let prog = Galley_lang.Parser.parse_program src in
  let expected = List.assoc out (Reference.eval_program inputs prog) in
  let res = D.run ~inputs prog in
  check_bool label true
    (T.equal_approx ~eps:1e-9 (D.output_of res out) expected)

let test_scalar_funcs () =
  let prng = Prng.create 99 in
  let a =
    T.random ~prng ~dims:[| 12 |] ~formats:[| T.Dense |] ~density:0.7
      ~value_lo:(-2.0) ~value_hi:2.0 ()
  in
  let b =
    T.random ~prng ~dims:[| 12 |] ~formats:[| T.Sparse_list |] ~density:0.6
      ~value_lo:(-1.5) ~value_hi:1.5 ()
  in
  let inputs = [ ("A", a); ("B", b) ] in
  check_source_vs_reference "abs elementwise" ~inputs "t[i] = abs(A[i])" "t";
  check_source_vs_reference "abs residual" ~inputs
    "t = sumof[i](abs(A[i] - B[i]))" "t";
  check_source_vs_reference "binary min" ~inputs "t[i] = min(A[i], B[i])" "t";
  check_source_vs_reference "binary max under maxof" ~inputs
    "t = maxof[i](max(A[i], B[i]))" "t"

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "fixpoint"
    [
      ( "parse",
        [
          Alcotest.test_case "iterate sources parse" `Quick test_parse_iterate;
          Alcotest.test_case "malformed iterate rejected" `Quick
            test_parse_rejects;
          Alcotest.test_case "straight-line passthrough" `Quick
            test_straightline_passthrough;
        ] );
      ( "validation",
        [
          Alcotest.test_case "runtime validation" `Quick
            test_runtime_validation;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "iteration cap" `Quick test_max_iters_hit;
          Alcotest.test_case "wall-clock deadline" `Quick test_deadline_hit;
          Alcotest.test_case "fixed count completes" `Quick
            test_fixed_count_completes;
        ] );
      ( "equivalence",
        Alcotest.test_case "gcn fixed-count" `Quick test_gcn_matches_unrolled
        :: Alcotest.test_case "reach == bfs" `Quick test_reach_matches_bfs
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_pagerank_matches_unrolled; prop_bellman_matches_unrolled ]
      );
      ( "semirings",
        [
          Alcotest.test_case "repeat_expr forms" `Quick test_repeat_expr;
          Alcotest.test_case "absent-index simplify" `Quick
            test_simplify_absent_index;
          Alcotest.test_case "elimination across semirings" `Quick
            test_elimination_semirings;
        ] );
      ( "scalar-funcs",
        [ Alcotest.test_case "abs and binary min/max" `Quick test_scalar_funcs ]
      );
    ]
