(* Resilience layer: degradation ladder (every tier end-to-end against the
   brute-force reference), fault injection (estimator NaN/overflow, kernel
   failures), the nnz guardrail, partial outputs under the execution
   deadline, plan validation, and classified errors via [run_checked]. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Tier = Galley_plan.Tier
module Logical_query = Galley_plan.Logical_query
module W = Galley_workloads
module D = Galley.Driver
module E = Galley.Errors
module F = Galley.Faults

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let sparse ~prng ~dims ~density =
  T.random ~prng ~dims
    ~formats:
      (Array.init (Array.length dims) (fun k ->
           if k = 0 then T.Dense else T.Sparse_list))
    ~density ()

(* Run [program] under [config] and fail unless every output matches the
   brute-force reference evaluator. *)
let check_against_reference ?(eps = 1e-6) name config inputs
    (program : Ir.program) : D.result =
  let reference = Galley.Reference.eval_program inputs program in
  let res = D.run ~config ~inputs program in
  List.iter
    (fun out ->
      let got = D.output_of res out in
      let want = List.assoc out reference in
      if not (T.equal_approx ~eps got want) then
        Alcotest.failf "%s: output %s:\ngot  %s\nwant %s" name out
          (T.to_string got) (T.to_string want))
    program.Ir.outputs;
  res

let all_tier (want : Tier.t) (tiers : (string * Tier.t) list) : bool =
  tiers <> [] && List.for_all (fun (_, t) -> t = want) tiers

(* The whole suite runs twice, once per kernel backend: the resilience
   machinery (degradation, faults, deadlines, guardrails) must behave
   identically over the staged compiler and the constraint-tree
   interpreter.  Tests reach the base config through [default_config],
   which picks up the backend selected by the suite wrapper at the
   bottom of this file. *)
let backend = ref Galley_engine.Exec.Staged

let default_config () =
  { D.default_config with kernel_backend = !backend }

let zero_deadline () = { (default_config ()) with optimizer_timeout = Some 0.0 }

(* -------------------------------------------------------------- *)
(* Degradation ladder, end to end.                                  *)
(* -------------------------------------------------------------- *)

(* A 0-second optimizer budget forces the naive tier for every query of
   every workload family; results must still match the reference. *)
let test_naive_tier_graphs () =
  let g =
    W.Graphs.symmetrize (W.Graphs.erdos_renyi ~name:"t" ~seed:7 ~n:24 ~m:60 ())
  in
  List.iter
    (fun p ->
      let prog = W.Subgraph.count_program p in
      let inputs = W.Subgraph.bindings g p in
      let res =
        check_against_reference ~eps:1e-4
          ("naive " ^ p.W.Subgraph.pname)
          (zero_deadline ()) inputs prog
      in
      check_bool "logical tiers all naive" true
        (all_tier Tier.Naive res.D.logical_tiers);
      check_bool "physical tiers all naive" true
        (all_tier Tier.Naive res.D.physical_tiers))
    [ W.Subgraph.triangle; W.Subgraph.path 3; W.Subgraph.star 3 ]

let test_naive_tier_ml () =
  let star =
    W.Tpch.star_instance ~scale:W.Tpch.tiny_scale ~layout:W.Tpch.tiny_layout
      ~seed:11 ()
  in
  let params = W.Ml.parameter_inputs ~seed:12 ~d:star.W.Tpch.d ~hidden:3 in
  let inputs = star.W.Tpch.inputs @ params in
  List.iter
    (fun alg ->
      let prog = W.Ml.program_of alg ~x:star.W.Tpch.x_def ~pts:[ "i" ] in
      let res =
        check_against_reference ~eps:1e-4
          ("naive " ^ W.Ml.algorithm_name alg)
          (zero_deadline ()) inputs prog
      in
      check_bool "physical tiers all naive" true
        (all_tier Tier.Naive res.D.physical_tiers))
    W.Ml.all_algorithms

let test_naive_tier_bfs_session () =
  let g =
    W.Graphs.symmetrize (W.Graphs.erdos_renyi ~name:"b" ~seed:3 ~n:40 ~m:90 ())
  in
  let adj = W.Graphs.adjacency g in
  let n = g.W.Graphs.n in
  let frontier = T.of_fun ~dims:[| n |] ~formats:[| T.Sparse_list |] (fun c ->
      if c.(0) = 0 then 1.0 else 0.0)
  in
  let run config =
    let s = D.Session.create ~config () in
    D.Session.bind s "E" adj;
    D.Session.bind s "F" frontier;
    D.Session.bind s "V" frontier;
    let r =
      D.Session.run_logical_plan s ~outputs:[ "Next"; "Vnew" ]
        (W.Bfs.iteration_plan ())
    in
    (r, D.output_of r "Vnew")
  in
  let r_naive, v_naive = run (zero_deadline ()) in
  let _, v_default = run (default_config ()) in
  check_bool "bfs iteration matches across tiers" true
    (T.equal_approx ~eps:1e-9 v_naive v_default);
  check_bool "session tiers all naive" true
    (all_tier Tier.Naive r_naive.D.physical_tiers)

(* A node budget big enough for greedy but too small for exact search
   lands the middle rung of the ladder. *)
let test_greedy_mid_tier () =
  let prng = Prng.create 21 in
  let dims = [| 6; 6 |] in
  let mat name = (name, sparse ~prng ~dims ~density:0.5) in
  let inputs = [ mat "A"; mat "B"; mat "C"; mat "D"; mat "E" ] in
  let chain =
    Ir.agg Op.Add [ "a"; "b"; "c"; "d" ]
      (Ir.mul
         [
           Ir.input "A" [ "a"; "b" ];
           Ir.input "B" [ "b"; "c" ];
           Ir.input "C" [ "c"; "d" ];
           Ir.input "D" [ "d"; "e" ];
           Ir.input "E" [ "a"; "e" ];
         ])
  in
  let program = { Ir.queries = [ Ir.query "out" chain ]; outputs = [ "out" ] } in
  let config =
    {
      (default_config ()) with
      logical =
        { Galley_logical.Optimizer.default_config with max_nodes = Some 25 };
    }
  in
  let res =
    check_against_reference ~eps:1e-5 "greedy mid tier" config inputs program
  in
  check_bool "logical tier degraded to greedy" true
    (List.for_all (fun (_, t) -> t = Tier.Greedy) res.D.logical_tiers);
  (* Sanity: without the budget the same program is planned exactly. *)
  let res_full =
    check_against_reference ~eps:1e-5 "exact tier" (default_config ()) inputs
      program
  in
  check_bool "unbudgeted run stays exact" true
    (List.for_all (fun (_, t) -> t = Tier.Exact) res_full.D.logical_tiers)

(* -------------------------------------------------------------- *)
(* Fault injection.                                                 *)
(* -------------------------------------------------------------- *)

let tri_inputs_and_program seed =
  let g =
    W.Graphs.symmetrize
      (W.Graphs.erdos_renyi ~name:"f" ~seed ~n:20 ~m:50 ())
  in
  let prog = W.Subgraph.count_program W.Subgraph.triangle in
  (W.Subgraph.bindings g W.Subgraph.triangle, prog)

(* A poisoned estimator (NaN or overflow) must degrade the plan, never
   fail the query or corrupt the answer. *)
let test_estimator_faults_degrade () =
  let inputs, prog = tri_inputs_and_program 31 in
  List.iter
    (fun (label, spec) ->
      let faults =
        match F.of_spec spec with Ok f -> f | Error m -> Alcotest.fail m
      in
      let config = { (default_config ()) with faults } in
      let res =
        check_against_reference ~eps:1e-4 ("fault " ^ label) config inputs prog
      in
      check_bool (label ^ " degrades physical plans to naive") true
        (all_tier Tier.Naive res.D.physical_tiers))
    [ ("estimator-nan", "estimator-nan"); ("estimator-inf", "estimator-inf") ]

let test_kernel_failure_classified () =
  let inputs, prog = tri_inputs_and_program 37 in
  (match
     D.run_checked
       ~config:
         {
           (default_config ()) with
           faults = { F.none with kernel_fail_on = Some 1 };
         }
       ~inputs prog
   with
  | Error (E.Kernel_failure { invocation = Some 1; context; _ }) ->
      check_bool "execution phase" true (context.E.phase = E.Execution)
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected kernel failure");
  (* An invocation count past the end of the program never fires. *)
  match
    D.run_checked
      ~config:
        {
          (default_config ()) with
          faults = { F.none with kernel_fail_on = Some 1000 };
        }
      ~inputs prog
  with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)

let test_fault_spec_roundtrip () =
  (match F.of_spec "estimator-nan,kernel-fail=3,opt-delay=0.5" with
  | Ok f ->
      check_bool "nan" true f.F.estimator_nan;
      check_bool "kernel" true (f.F.kernel_fail_on = Some 3);
      Alcotest.(check string)
        "roundtrip" "estimator-nan,opt-delay=0.5,kernel-fail=3" (F.to_string f)
  | Error m -> Alcotest.fail m);
  check_bool "empty spec is none" true
    (match F.of_spec "" with Ok f -> F.is_none f | Error _ -> false);
  check_bool "bad fault rejected" true
    (match F.of_spec "frobnicate" with Error _ -> true | Ok _ -> false);
  check_bool "bad count rejected" true
    (match F.of_spec "kernel-fail=0" with Error _ -> true | Ok _ -> false)

(* -------------------------------------------------------------- *)
(* nnz guardrail.                                                   *)
(* -------------------------------------------------------------- *)

(* Scaling every estimate down by 1e9 makes each materialized intermediate
   look like a blown budget.  One offending query: the guardrail spends its
   single corrective re-optimization and the run still succeeds. *)
let test_nnz_guard_retry () =
  let prng = Prng.create 41 in
  let a = sparse ~prng ~dims:[| 12; 12 |] ~density:0.6 in
  let program =
    {
      Ir.queries =
        [
          Ir.query "out"
            (Ir.agg Op.Add [ "j" ] (Ir.input "A" [ "i"; "j" ]));
        ];
      outputs = [ "out" ];
    }
  in
  let config =
    {
      (default_config ()) with
      faults = { F.none with estimator_scale = 1e-9 };
      nnz_guard = Some 4.0;
    }
  in
  match D.run_checked ~config ~inputs:[ ("A", a) ] program with
  | Ok res -> check_int "one corrective retry" 1 res.D.nnz_guard_retries
  | Error e -> Alcotest.failf "unexpected error: %s" (E.to_string e)

(* Two offending queries: the second strike exceeds the budget. *)
let test_nnz_guard_budget_exceeded () =
  let prng = Prng.create 43 in
  let a = sparse ~prng ~dims:[| 12; 12 |] ~density:0.6 in
  let program =
    {
      Ir.queries =
        [
          Ir.query "m1"
            (Ir.agg Op.Add [ "j" ] (Ir.input "A" [ "i"; "j" ]));
          Ir.query "m2"
            (Ir.agg Op.Add [ "i" ] (Ir.input "A" [ "i"; "j" ]));
        ];
      outputs = [ "m1"; "m2" ];
    }
  in
  let config =
    {
      (default_config ()) with
      faults = { F.none with estimator_scale = 1e-9 };
      nnz_guard = Some 4.0;
    }
  in
  match D.run_checked ~config ~inputs:[ ("A", a) ] program with
  | Error (E.Budget_exceeded { estimated; actual; _ }) ->
      check_bool "actual exceeds estimate" true (actual > estimated)
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected budget exceeded"

(* With sane estimates the guardrail never fires. *)
let test_nnz_guard_quiet () =
  let inputs, prog = tri_inputs_and_program 47 in
  let config = { (default_config ()) with nnz_guard = Some 4.0 } in
  let res = check_against_reference ~eps:1e-4 "guard quiet" config inputs prog in
  check_int "no retries" 0 res.D.nnz_guard_retries

(* -------------------------------------------------------------- *)
(* Deadlines: partial outputs and no-degrade mode.                  *)
(* -------------------------------------------------------------- *)

(* Parameterized over [domains]: the execution deadline must behave the
   same under the parallel runtime — every worker carries its own tick
   counter, and a [Timeout] raised by any chunk cancels the rest — so a
   timed-out run still reports completed outputs and names the rest. *)
let partial_outputs_on_timeout ~domains () =
  let prng = Prng.create 53 in
  let small = sparse ~prng ~dims:[| 8 |] ~density:0.9 in
  let n = 220 in
  let dense name = (name, sparse ~prng ~dims:[| n; n |] ~density:0.4) in
  let inputs = [ ("v", small); dense "A"; dense "B"; dense "C" ] in
  let program =
    {
      Ir.queries =
        [
          Ir.query "cheap" (Ir.agg Op.Add [ "i" ] (Ir.input "v" [ "i" ]));
          Ir.query "heavy"
            (Ir.agg Op.Add [ "i"; "j"; "k" ]
               (Ir.mul
                  [
                    Ir.input "A" [ "i"; "j" ];
                    Ir.input "B" [ "j"; "k" ];
                    Ir.input "C" [ "i"; "k" ];
                  ]));
        ];
      outputs = [ "cheap"; "heavy" ];
    }
  in
  let config = { (default_config ()) with timeout = Some 0.02; domains } in
  let res = D.run ~config ~inputs program in
  if res.D.timed_out then begin
    check_bool "completed output survives" true
      (List.exists (fun (n, _, _) -> n = "cheap") res.D.outputs);
    check_bool "aborted output reported incomplete" true
      (List.mem "heavy" res.D.incomplete_outputs);
    check_bool "output_res reports the incomplete name" true
      (match D.output_res res "heavy" with
      | Error msg ->
          (* mentions what does exist *)
          String.length msg > 0
      | Ok _ -> false)
  end
  else
    (* Machine fast enough to finish: both outputs present, none missing. *)
    check_int "no incomplete outputs" 0 (List.length res.D.incomplete_outputs)

let test_partial_outputs_on_timeout () = partial_outputs_on_timeout ~domains:1 ()

let test_partial_outputs_on_timeout_parallel () =
  partial_outputs_on_timeout ~domains:4 ()

(* Fault injection composes with parallelism: kernel-fail=N still fires
   (the invocation ordinal is a shared atomic counter) and surfaces as a
   classified error from whichever worker hit it. *)
let test_kernel_failure_under_parallelism () =
  let inputs, prog = tri_inputs_and_program 37 in
  match
    D.run_checked
      ~config:
        {
          (default_config ()) with
          faults = { F.none with kernel_fail_on = Some 1 };
          domains = 4;
        }
      ~inputs prog
  with
  | Error (E.Kernel_failure { context; _ }) ->
      check_bool "execution phase" true (context.E.phase = E.Execution)
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected kernel failure"

let test_no_degrade_is_error () =
  let inputs, prog = tri_inputs_and_program 59 in
  match
    D.run_checked
      ~config:
        { (default_config ()) with optimizer_timeout = Some 0.0; degrade = false }
      ~inputs prog
  with
  | Error (E.Optimizer_deadline _) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected optimizer deadline error"

(* -------------------------------------------------------------- *)
(* Plan validation.                                                 *)
(* -------------------------------------------------------------- *)

let test_validate_logical () =
  let q name body =
    Logical_query.make ~output_idxs:[ "i" ] ~name ~agg_op:Op.Ident ~agg_idxs:[]
      ~body ()
  in
  let known = ( = ) "A" in
  check_bool "good plan accepted" true
    (Galley.Validate.logical_plan ~known ~outputs:[ "r" ]
       [ q "r" (Ir.input "A" [ "i" ]) ]
    = Ok ());
  check_bool "unresolved reference rejected" true
    (match
       Galley.Validate.logical_plan ~known ~outputs:[ "r" ]
         [ q "r" (Ir.input "ZZZ" [ "i" ]) ]
     with
    | Error { Galley.Validate.v_query = Some "r"; _ } -> true
    | _ -> false);
  check_bool "duplicate names rejected" true
    (Result.is_error
       (Galley.Validate.logical_plan ~known ~outputs:[ "r" ]
          [ q "r" (Ir.input "A" [ "i" ]); q "r" (Ir.input "A" [ "i" ]) ]));
  check_bool "missing output rejected" true
    (Result.is_error
       (Galley.Validate.logical_plan ~known ~outputs:[ "gone" ]
          [ q "r" (Ir.input "A" [ "i" ]) ]))

let test_validate_driver_missing_output () =
  let prng = Prng.create 61 in
  let a = sparse ~prng ~dims:[| 4 |] ~density:0.9 in
  let program =
    {
      Ir.queries = [ Ir.query "r" (Ir.input "A" [ "i" ]) ];
      outputs = [ "nope" ];
    }
  in
  match D.run_checked ~inputs:[ ("A", a) ] program with
  | Error (E.Plan_invalid { context; _ }) ->
      check_bool "validation phase" true (context.E.phase = E.Validation)
  | Error e -> Alcotest.failf "wrong error: %s" (E.to_string e)
  | Ok _ -> Alcotest.fail "expected plan validation failure"

let test_validate_physical () =
  let module P = Galley_plan.Physical in
  let kernel =
    {
      P.name = "k";
      loop_order = [ "i" ];
      agg_op = Op.Ident;
      agg_idxs = [];
      output_idxs = [ "i" ];
      output_dims = [| 4 |];
      output_formats = [| T.Sparse_list |];
      loop_dims = [| 4 |];
      body = P.P_access 0;
      accesses =
        [|
          {
            P.tensor = "A";
            kind = `Input;
            idxs = [ "i" ];
            protocols = [ P.Iterate ];
          };
        |];
      body_fill = 0.0;
      output_fill = 0.0;
      agg_space = 1.0;
    }
  in
  check_bool "good kernel accepted" true
    (Galley.Validate.physical_plan ~known:(( = ) "A") [ P.Kernel kernel ]
    = Ok ());
  check_bool "unbound access rejected" true
    (Result.is_error
       (Galley.Validate.physical_plan ~known:(fun _ -> false)
          [ P.Kernel kernel ]));
  (* Loop order must cover exactly the output + aggregate indices. *)
  let bad_loops = { kernel with P.loop_order = [ "i"; "j" ]; loop_dims = [| 4; 4 |] } in
  check_bool "uncovered loop rejected" true
    (Result.is_error
       (Galley.Validate.physical_plan ~known:(( = ) "A") [ P.Kernel bad_loops ]))

let test_output_res () =
  let prng = Prng.create 67 in
  let a = sparse ~prng ~dims:[| 4 |] ~density:0.9 in
  let res = D.run_query ~inputs:[ ("A", a) ] (Ir.query "r" (Ir.input "A" [ "i" ])) in
  check_bool "present output found" true (Result.is_ok (D.output_res res "r"));
  (match D.output_res res "nope" with
  | Error msg ->
      check_bool "message names existing outputs" true
        (let contains s sub =
           let n = String.length s and m = String.length sub in
           let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
           go 0
         in
         contains msg "r")
  | Ok _ -> Alcotest.fail "expected missing output");
  check_bool "output_of still raises" true
    (try
       ignore (D.output_of res "nope");
       false
     with Invalid_argument _ -> true)

(* -------------------------------------------------------------- *)

let groups =
  [
    ( "degradation ladder",
      [
        ("naive tier: subgraph counting", test_naive_tier_graphs);
        ("naive tier: ml over joins", test_naive_tier_ml);
        ("naive tier: bfs session", test_naive_tier_bfs_session);
        ("greedy mid tier", test_greedy_mid_tier);
      ] );
    ( "fault injection",
      [
        ("estimator nan/inf degrade", test_estimator_faults_degrade);
        ("kernel failure classified", test_kernel_failure_classified);
        ("fault spec parsing", test_fault_spec_roundtrip);
      ] );
    ( "nnz guardrail",
      [
        ("corrective retry", test_nnz_guard_retry);
        ("budget exceeded", test_nnz_guard_budget_exceeded);
        ("quiet on sane estimates", test_nnz_guard_quiet);
      ] );
    ( "deadlines",
      [
        ("partial outputs on timeout", test_partial_outputs_on_timeout);
        ( "partial outputs on timeout, domains=4",
          test_partial_outputs_on_timeout_parallel );
        ( "kernel failure under domains=4",
          test_kernel_failure_under_parallelism );
        ("no-degrade raises deadline error", test_no_degrade_is_error);
      ] );
    ( "validation",
      [
        ("logical validator", test_validate_logical);
        ("driver rejects missing output", test_validate_driver_missing_output);
        ("physical validator", test_validate_physical);
        ("output_res", test_output_res);
      ] );
  ]

let () =
  let suite b tag =
    List.map
      (fun (group, cases) ->
        ( Printf.sprintf "%s [%s]" group tag,
          List.map
            (fun (name, f) ->
              Alcotest.test_case name `Quick (fun () ->
                  backend := b;
                  f ()))
            cases ))
      groups
  in
  Alcotest.run "faults"
    (suite Galley_engine.Exec.Staged "staged"
    @ suite Galley_engine.Exec.Interp "interp")
