(* Parallel runtime: domain-pool unit tests, DAG wave scheduling, and the
   serial-equivalence property — executing at [domains = 4] must produce
   outputs bit-identical to [domains = 1] on random generated kernels and
   on the paper's figure workloads, under both kernel backends.  The
   runtime guarantees this by replaying each chunk's accumulation log in
   chunk order on the submitting domain, reproducing the serial
   accumulation sequence exactly (DESIGN.md "Parallel runtime"). *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module LQ = Galley_plan.Logical_query
module Popt = Galley_physical.Optimizer
module Exec = Galley_engine.Exec
module Ctx = Galley_stats.Ctx
module Pool = Galley_parallel.Pool
module Dag = Galley_parallel.Dag
module D = Galley.Driver
module W = Galley_workloads

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------- *)
(* Pool.                                                            *)
(* -------------------------------------------------------------- *)

let test_pool_runs_all () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      check_int "size" 4 (Pool.size pool);
      let n = 100 in
      let hit = Array.make n false in
      Pool.run_all pool
        (Array.init n (fun i () -> hit.(i) <- true));
      check_bool "every task ran" true (Array.for_all Fun.id hit);
      (* Empty batch is a no-op. *)
      Pool.run_all pool [||])

let test_pool_serial_order () =
  (* parallelism <= 1 is the exact serial path: tasks run in submission
     order on the calling domain, so effects are strictly sequenced. *)
  let pool = Pool.create ~domains:1 in
  let order = ref [] in
  Pool.run_all pool (Array.init 5 (fun i () -> order := i :: !order));
  Alcotest.(check (list int)) "in order" [ 0; 1; 2; 3; 4 ] (List.rev !order);
  Pool.shutdown pool

let test_pool_exception () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let ran = Atomic.make 0 in
      let raised =
        try
          Pool.run_all pool
            (Array.init 8 (fun i () ->
                 if i = 3 then failwith "boom"
                 else ignore (Atomic.fetch_and_add ran 1)));
          false
        with Failure msg -> msg = "boom"
      in
      check_bool "exception type preserved" true raised;
      (* The batch drained: run_all returned, so no task is still live. *)
      check_bool "other tasks bounded" true (Atomic.get ran <= 7))

let test_pool_nested () =
  (* A task may submit a batch to the same pool (an inter-query task
     running a chunked kernel); the submitter helps, so nesting cannot
     deadlock. *)
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let total = Atomic.make 0 in
      Pool.run_all pool
        (Array.init 3 (fun _ () ->
             Pool.run_all pool
               (Array.init 4 (fun _ () ->
                    ignore (Atomic.fetch_and_add total 1)))));
      check_int "all inner tasks ran" 12 (Atomic.get total))

let test_pool_shutdown_reuse () =
  let pool = Pool.create ~domains:4 in
  let count = Atomic.make 0 in
  let batch () =
    Pool.run_all pool
      (Array.init 6 (fun _ () -> ignore (Atomic.fetch_and_add count 1)))
  in
  batch ();
  Pool.shutdown pool;
  batch ();
  (* Shutdown is idempotent. *)
  Pool.shutdown pool;
  Pool.shutdown pool;
  check_int "both batches ran" 12 (Atomic.get count)

(* -------------------------------------------------------------- *)
(* Dag.                                                             *)
(* -------------------------------------------------------------- *)

let check_waves = Alcotest.(check (list (list int)))

let test_dag_waves () =
  check_waves "empty" [] (Dag.waves ~n:0 ~deps:(fun _ -> []));
  check_waves "independent" [ [ 0; 1; 2 ] ]
    (Dag.waves ~n:3 ~deps:(fun _ -> []));
  check_waves "chain"
    [ [ 0 ]; [ 1 ]; [ 2 ] ]
    (Dag.waves ~n:3 ~deps:(fun i -> if i = 0 then [] else [ i - 1 ]));
  (* Diamond: 1 and 2 depend on 0, 3 joins both. *)
  check_waves "diamond"
    [ [ 0 ]; [ 1; 2 ]; [ 3 ] ]
    (Dag.waves ~n:4 ~deps:(function
      | 0 -> []
      | 1 | 2 -> [ 0 ]
      | _ -> [ 1; 2 ]));
  (* Mixed depths: a straggler with no deps stays in wave 0. *)
  check_waves "mixed"
    [ [ 0; 2 ]; [ 1; 3 ] ]
    (Dag.waves ~n:4 ~deps:(function 1 -> [ 0 ] | 3 -> [ 0; 2 ] | _ -> []))

let test_dag_rejects_forward_deps () =
  let forward () = ignore (Dag.waves ~n:2 ~deps:(function 0 -> [ 1 ] | _ -> [])) in
  let self () = ignore (Dag.waves ~n:2 ~deps:(fun i -> [ i ])) in
  List.iter
    (fun f ->
      check_bool "invalid_arg" true
        (try
           f ();
           false
         with Invalid_argument _ -> true))
    [ forward; self ]

(* -------------------------------------------------------------- *)
(* Serial equivalence: domains = 4 must be bit-identical to 1.       *)
(* -------------------------------------------------------------- *)

let fresh_gen () =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "#c%d" !c

let plan_for ?(popt_config = Popt.default_config) inputs (q : LQ.t) =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  Popt.plan_query ~config:popt_config ctx ~fresh:(fresh_gen ()) q

let run_plan_with backend domains inputs plan name =
  let exec = Exec.create ~backend ~domains () in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
      Exec.run_plan exec plan;
      Exec.lookup exec name)

(* Bit-for-bit equality of the dense images (and of fills/dims). *)
let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

let check_serial_equivalence ?popt_config name inputs (q : LQ.t) =
  let plan = plan_for ?popt_config inputs q in
  List.iter
    (fun backend ->
      let serial = run_plan_with backend 1 inputs plan q.LQ.name in
      let par = run_plan_with backend 4 inputs plan q.LQ.name in
      if not (bits_equal serial par) then
        Alcotest.failf "%s (%s): domains=4 diverges from domains=1:\n%s\nvs\n%s"
          name
          (match backend with Exec.Staged -> "staged" | Exec.Interp -> "interp")
          (T.to_string serial) (T.to_string par))
    [ Exec.Staged; Exec.Interp ]

(* The generator from the compiler's differential suite: random formats,
   fills (including non-annihilating), map/aggregate ops.  Here the
   oracle is the runtime itself at [domains = 1]. *)
let prop_parallel_equiv =
  QCheck.Test.make ~name:"domains=4 = domains=1 (bit-for-bit)" ~count:60
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      let fmt () =
        match Prng.int prng 4 with
        | 0 -> T.Dense
        | 1 -> T.Sparse_list
        | 2 -> T.Bytemap
        | _ -> T.Hash
      in
      let fill () =
        match Prng.int prng 4 with 0 | 1 -> 0.0 | 2 -> 1.0 | _ -> 0.5
      in
      let n1 = 3 + Prng.int prng 5 and n2 = 3 + Prng.int prng 5 in
      let rand dims =
        T.random ~fill:(fill ()) ~prng ~dims
          ~formats:(Array.init (Array.length dims) (fun _ -> fmt ()))
          ~density:(Prng.float_range prng 0.15 0.6)
          ()
      in
      let a = rand [| n1; n2 |] in
      let b = rand [| n2 |] in
      let c = rand [| n1 |] in
      let inputs = [ ("A", a); ("b", b); ("c", c) ] in
      let leaf () =
        match Prng.int prng 4 with
        | 0 -> Ir.input "A" [ "i"; "j" ]
        | 1 -> Ir.input "b" [ "j" ]
        | 2 -> Ir.input "c" [ "i" ]
        | _ -> Ir.lit (Prng.float_range prng (-1.0) 2.0)
      in
      let rec gen depth =
        if depth = 0 || Prng.int prng 3 = 0 then leaf ()
        else
          match Prng.int prng 7 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | 2 -> Ir.Map (Op.Max, [ gen (depth - 1); gen (depth - 1) ])
          | 3 -> Ir.Map (Op.Min, [ gen (depth - 1); gen (depth - 1) ])
          | 4 -> Ir.Map (Op.Sub, [ gen (depth - 1); gen (depth - 1) ])
          | 5 -> Ir.map Op.Sigmoid [ gen (depth - 1) ]
          | _ -> Ir.map Op.Relu [ gen (depth - 1) ]
      in
      let body = gen 3 in
      let free = Ir.Idx_set.elements (Ir.free_indices body) in
      let agg_op =
        match Prng.int prng 4 with
        | 0 -> Op.Add
        | 1 -> Op.Max
        | 2 -> Op.Min
        | _ -> Op.Mul
      in
      let agg_idxs = List.filter (fun _ -> Prng.bool prng) free in
      let output_idxs = List.filter (fun i -> not (List.mem i agg_idxs)) free in
      let agg_op = if agg_idxs = [] then Op.Ident else agg_op in
      let out_fmts = Array.init (List.length output_idxs) (fun _ -> fmt ()) in
      let popt_config =
        {
          Popt.default_config with
          format_override = (fun n -> if n = "out" then Some out_fmts else None);
        }
      in
      let q = LQ.make ~output_idxs ~name:"out" ~agg_op ~agg_idxs ~body () in
      check_serial_equivalence ~popt_config "random kernel" inputs q;
      true)

(* A kernel big enough that the intra-kernel driver actually chunks the
   outermost level across several workers. *)
let test_large_matvec_equiv () =
  let prng = Prng.create 31 in
  List.iter
    (fun formats ->
      let a =
        T.random ~prng ~dims:[| 600; 80 |] ~formats ~density:0.08 ()
      in
      let v =
        T.random ~prng ~dims:[| 80 |] ~formats:[| T.Dense |] ~density:0.5 ()
      in
      let q =
        LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add
          ~agg_idxs:[ "j" ]
          ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "v" [ "j" ] ])
          ()
      in
      check_serial_equivalence "large matvec" [ ("A", a); ("v", v) ] q)
    [
      [| T.Dense; T.Sparse_list |];
      [| T.Sparse_list; T.Sparse_list |];
      [| T.Hash; T.Sparse_list |];
    ]

(* -------------------------------------------------------------- *)
(* Figure workloads end to end through the driver.                   *)
(* -------------------------------------------------------------- *)

let check_driver_identical name ~inputs program =
  List.iter
    (fun backend ->
      let run domains =
        D.run
          ~config:{ D.default_config with D.domains; kernel_backend = backend }
          ~inputs program
      in
      let serial = run 1 and par = run 4 in
      List.iter2
        (fun (n1, _, t1) (n4, _, t4) ->
          check_bool
            (Printf.sprintf "%s: output %s identical" name n1)
            true
            (n1 = n4 && bits_equal t1 t4))
        serial.D.outputs par.D.outputs)
    [ Exec.Staged; Exec.Interp ]

let test_fig6_ml_equiv () =
  (* Fig. 6 shapes over a materialized feature matrix: Linreg (one query)
     and the two-layer NN (an inter-query dependency, so the DAG scheduler
     and the JIT constraint are both in play). *)
  let prng = Prng.create 7 in
  let x =
    T.random ~prng ~dims:[| 64; 12 |]
      ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.3 ()
  in
  let inputs =
    ("X", x) :: W.Ml.parameter_inputs ~seed:5 ~d:12 ~hidden:8
  in
  let x_expr = Ir.input "X" [ "i"; "j" ] in
  List.iter
    (fun alg ->
      check_driver_identical
        ("fig6 " ^ W.Ml.algorithm_name alg)
        ~inputs
        (W.Ml.program_of alg ~x:x_expr ~pts:[ "i" ]))
    [ W.Ml.Linreg; W.Ml.Logreg; W.Ml.Nn ]

let test_fig7_subgraph_equiv () =
  (* Fig. 7: triangle and 3-path counting on a random graph. *)
  let g =
    W.Graphs.symmetrize
      (W.Graphs.erdos_renyi ~name:"par" ~seed:17 ~n:120 ~m:600 ())
  in
  List.iter
    (fun p ->
      check_driver_identical
        ("fig7 " ^ p.W.Subgraph.pname)
        ~inputs:(W.Subgraph.bindings g p)
        (W.Subgraph.count_program p))
    [ W.Subgraph.triangle; W.Subgraph.path 3 ]

let test_fig10_bfs_equiv () =
  (* Fig. 10: BFS runs iteration by iteration through a session; the
     traversal must make identical decisions at every domain count. *)
  let g =
    W.Graphs.symmetrize
      (W.Graphs.erdos_renyi ~name:"bfs-par" ~seed:23 ~n:300 ~m:900 ())
  in
  let adjacency = W.Graphs.adjacency g in
  let run domains =
    W.Bfs.run
      ~config_base:{ D.default_config with D.domains }
      W.Bfs.Adaptive ~adjacency ~source:0
  in
  let serial = run 1 and par = run 4 in
  check_int "same iterations" serial.W.Bfs.iterations par.W.Bfs.iterations;
  check_int "same visited" serial.W.Bfs.visited par.W.Bfs.visited;
  check_int "reference visited" (W.Bfs.reference_visited ~adjacency ~source:0)
    par.W.Bfs.visited

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "runs all tasks" `Quick test_pool_runs_all;
          Alcotest.test_case "serial order at 1" `Quick test_pool_serial_order;
          Alcotest.test_case "exception propagation" `Quick test_pool_exception;
          Alcotest.test_case "nested batches" `Quick test_pool_nested;
          Alcotest.test_case "shutdown and reuse" `Quick
            test_pool_shutdown_reuse;
        ] );
      ( "dag",
        [
          Alcotest.test_case "waves" `Quick test_dag_waves;
          Alcotest.test_case "rejects forward deps" `Quick
            test_dag_rejects_forward_deps;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "large matvec" `Quick test_large_matvec_equiv;
          Alcotest.test_case "fig6 ML" `Quick test_fig6_ml_equiv;
          Alcotest.test_case "fig7 subgraph" `Quick test_fig7_subgraph_equiv;
          Alcotest.test_case "fig10 BFS" `Quick test_fig10_bfs_equiv;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_parallel_equiv ] );
    ]
