(* v2 kernel layer (DESIGN.md §14): word-level bitset algebra unit
   tests (tail words, empty and all-set masks, randomized vs naive),
   the morsel dispenser protocol, and the bit-for-bit equivalence
   matrix for all three new fast paths — dense microkernels, bytemap
   word merges, morsel scheduling — against the interpreter oracle and
   the brute-force reference, across v2 on/off and domains {1, 4}.
   Also checks the observability surfacing (merge-strategy strings,
   par:morsel suffix, kernel.morsels metric) and the sparse-weight GCN
   workload against its dense reference. *)

module T = Galley_tensor.Tensor
module Prng = Galley_tensor.Prng
module Bitset = Galley_tensor.Bitset
module Ir = Galley_plan.Ir
module Op = Galley_plan.Op
module Schema = Galley_plan.Schema
module LQ = Galley_plan.Logical_query
module Popt = Galley_physical.Optimizer
module Exec = Galley_engine.Exec
module Ctx = Galley_stats.Ctx
module V2 = Galley_compile.Kernel_v2
module Morsel = Galley_parallel.Morsel
module Obs = Galley_obs
module Trace = Galley_obs.Trace
module Metrics = Galley_obs.Metrics
module Fix = Galley_fixpoint.Fixpoint
module D = Galley.Driver
module E = Galley.Errors
module I = Galley_workloads.Iterative
module G = Galley_workloads.Graphs

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_ints = Alcotest.(check (list int))

(* -------------------------------------------------------------- *)
(* Bitset unit tests.                                               *)
(* -------------------------------------------------------------- *)

let wb = Bitset.word_bits

let test_bitset_shapes () =
  (* Word-count accounting, including exact word boundaries. *)
  check_int "one word" 1 (Bitset.n_words 1);
  check_int "full word" 1 (Bitset.n_words wb);
  check_int "one past a word" 2 (Bitset.n_words (wb + 1));
  check_int "two full words" 2 (Bitset.n_words (2 * wb));
  let w = Bitset.of_sorted [| 0; 5; wb - 1; wb; (2 * wb) - 1 |] ~len:(2 * wb) in
  check_int "words allocated" 2 (Array.length w);
  check_ints "cross-word round trip"
    [ 0; 5; wb - 1; wb; (2 * wb) - 1 ]
    (Array.to_list (Bitset.to_array w));
  check_bool "mem hit" true (Bitset.mem w wb);
  check_bool "mem miss" false (Bitset.mem w 1);
  check_bool "mem out of range" false (Bitset.mem w (10 * wb));
  Alcotest.check_raises "out-of-range coordinate"
    (Invalid_argument "Bitset.of_sorted: index out of range") (fun () ->
      ignore (Bitset.of_sorted [| 7 |] ~len:7));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Bitset.inter_into: length mismatch") (fun () ->
      Bitset.inter_into (Array.make 1 0) (Array.make 2 0))

let test_bitset_empty_mask () =
  let len = wb + 7 in
  let e = Bitset.of_sorted [||] ~len in
  check_int "empty count" 0 (Bitset.count e);
  check_ints "empty drain" [] (Array.to_list (Bitset.to_array e));
  Bitset.iter_set e (fun _ -> Alcotest.fail "iter_set visited an empty mask");
  let full = Bitset.of_sorted (Array.init len Fun.id) ~len in
  check_ints "empty kills intersection" []
    (Array.to_list (Bitset.to_array (Bitset.inter full e)));
  check_int "empty is union identity" len (Bitset.count (Bitset.union e full))

let test_bitset_all_set_tail () =
  (* A fully-set mask whose length is not a word multiple: the tail
     word must stay clean so algebra never manufactures out-of-range
     coordinates. *)
  List.iter
    (fun len ->
      let full = Bitset.of_sorted (Array.init len Fun.id) ~len in
      check_int "count = len" len (Bitset.count full);
      check_bool "identity round trip" true
        (Bitset.to_array full = Array.init len Fun.id);
      check_int "self-intersection" len (Bitset.count (Bitset.inter full full));
      check_int "self-union" len (Bitset.count (Bitset.union full full));
      (* Tail bits beyond [len] are zero in every word. *)
      let last = Array.length full - 1 in
      let used = len - (last * wb) in
      check_bool "tail hygiene" true
        (used = wb || full.(last) lsr used = 0))
    [ 1; wb - 1; wb; wb + 1; (2 * wb) + 13; 100 ]

let test_bitset_iter_ascending () =
  let prng = Prng.create 17 in
  for _ = 1 to 20 do
    let len = 1 + Prng.int prng 300 in
    let crd =
      Array.of_seq
        (Hashtbl.to_seq_keys
           (let tbl = Hashtbl.create 16 in
            for _ = 1 to Prng.int prng 80 do
              Hashtbl.replace tbl (Prng.int prng len) ()
            done;
            tbl))
    in
    let w = Bitset.of_sorted crd ~len in
    let prev = ref (-1) in
    Bitset.iter_set w (fun i ->
        check_bool "strictly ascending" true (i > !prev);
        check_bool "was inserted" true (Array.exists (( = ) i) crd);
        prev := i);
    check_int "visit count" (Array.length crd) (Bitset.count w)
  done

let test_bitset_algebra_vs_naive () =
  let prng = Prng.create 23 in
  for _ = 1 to 40 do
    let len = 1 + Prng.int prng 250 in
    let rand_set () =
      let tbl = Hashtbl.create 16 in
      for _ = 1 to Prng.int prng 120 do
        Hashtbl.replace tbl (Prng.int prng len) ()
      done;
      tbl
    in
    let ta = rand_set () and tb = rand_set () in
    let wa = Bitset.of_sorted (Array.of_seq (Hashtbl.to_seq_keys ta)) ~len in
    let wb_ = Bitset.of_sorted (Array.of_seq (Hashtbl.to_seq_keys tb)) ~len in
    let naive p = List.filter p (List.init len Fun.id) in
    check_ints "inter = naive"
      (naive (fun i -> Hashtbl.mem ta i && Hashtbl.mem tb i))
      (Array.to_list (Bitset.to_array (Bitset.inter wa wb_)));
    check_ints "union = naive"
      (naive (fun i -> Hashtbl.mem ta i || Hashtbl.mem tb i))
      (Array.to_list (Bitset.to_array (Bitset.union wa wb_)))
  done

(* -------------------------------------------------------------- *)
(* Morsel dispenser.                                                *)
(* -------------------------------------------------------------- *)

let test_morsel_ranges () =
  let d = Morsel.create ~n_items:10 ~size:3 in
  check_int "morsel count" 4 (Morsel.n_morsels d);
  let take () = Morsel.take d in
  check_bool "first" true (take () = Some (0, 0, 3));
  check_bool "second" true (take () = Some (1, 3, 6));
  check_bool "third" true (take () = Some (2, 6, 9));
  check_bool "short tail" true (take () = Some (3, 9, 10));
  check_bool "drained" true (take () = None);
  check_bool "stays drained" true (take () = None);
  (* Degenerate sizes are clamped, empty batches are dry at once. *)
  check_int "size clamp" 5 (Morsel.n_morsels (Morsel.create ~n_items:5 ~size:0));
  let e = Morsel.create ~n_items:0 ~size:4 in
  check_int "empty batch" 0 (Morsel.n_morsels e);
  check_bool "empty is dry" true (Morsel.take e = None)

let test_morsel_disjoint_cover () =
  (* Concurrent pulls partition [0, n): every item claimed exactly once. *)
  let n = 997 in
  let d = Morsel.create ~n_items:n ~size:16 in
  let claimed = Array.make n 0 in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            let rec loop () =
              match Morsel.take d with
              | None -> ()
              | Some (_, lo, hi) ->
                  for i = lo to hi - 1 do
                    (* Each index lives in exactly one morsel, and each
                       morsel is claimed by exactly one lane, so these
                       writes never race. *)
                    claimed.(i) <- claimed.(i) + 1
                  done;
                  loop ()
            in
            loop ()))
  in
  Array.iter Domain.join domains;
  check_bool "each item exactly once" true (Array.for_all (( = ) 1) claimed)

(* -------------------------------------------------------------- *)
(* Differential matrix: v2 on/off x domains {1,4} x backends.       *)
(* -------------------------------------------------------------- *)

let fresh_gen () =
  let c = ref 0 in
  fun () ->
    incr c;
    Printf.sprintf "#v%d" !c

let plan_for ?(popt_config = Popt.default_config) inputs (q : LQ.t) =
  let schema = Schema.create () in
  List.iter (fun (n, t) -> Schema.declare_tensor schema n t) inputs;
  let ctx = Ctx.create schema in
  List.iter (fun (n, t) -> ctx.Ctx.register_input n t) inputs;
  Popt.plan_query ~config:popt_config ctx ~fresh:(fresh_gen ()) q

let run_plan_with backend domains inputs plan name =
  let exec = Exec.create ~backend ~domains () in
  Fun.protect
    ~finally:(fun () -> Exec.shutdown exec)
    (fun () ->
      List.iter (fun (n, t) -> Exec.bind exec n t) inputs;
      Exec.run_plan exec plan;
      Exec.lookup exec name)

(* Bit-for-bit equality of the dense images (and of fills/dims). *)
let bits_equal (a : T.t) (b : T.t) : bool =
  T.dims a = T.dims b
  && Int64.bits_of_float (T.fill a) = Int64.bits_of_float (T.fill b)
  &&
  let fa = T.to_flat_dense a and fb = T.to_flat_dense b in
  Array.for_all2
    (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y)
    fa fb

let reference inputs (q : LQ.t) =
  List.assoc q.LQ.name
    (Galley.Reference.eval_program inputs
       { Ir.queries = [ LQ.to_query q ]; outputs = [ q.LQ.name ] })

(* Run [f] with all three v2 switches forced to [on], restoring the
   ambient setting afterwards (tests must not leak gate state). *)
let with_v2 on f =
  let micro = !V2.micro and bits = !V2.bits and morsel = !V2.morsel in
  V2.set_all on;
  Fun.protect
    ~finally:(fun () ->
      V2.micro := micro;
      V2.bits := bits;
      V2.morsel := morsel)
    f

(* Plan once; the interp oracle (v2 irrelevant there) fixes the
   expected bits, and every staged configuration — v2 on/off, domains
   1/4, so micro, bitset merges and the morsel scheduler all engage —
   must reproduce them exactly.  The brute-force reference sums in a
   different order, so it gets a tolerance. *)
let check_v2_matrix ?popt_config name inputs (q : LQ.t) =
  let plan = plan_for ?popt_config inputs q in
  let run ~v2 ~domains backend =
    with_v2 v2 (fun () -> run_plan_with backend domains inputs plan q.LQ.name)
  in
  let oracle = run ~v2:false ~domains:1 Exec.Interp in
  List.iter
    (fun (v2, domains) ->
      let got = run ~v2 ~domains Exec.Staged in
      if not (bits_equal got oracle) then
        Alcotest.failf
          "%s: staged (v2=%b, domains=%d) diverges from the interp oracle:\n\
           %s\nvs\n%s"
          name v2 domains (T.to_string got) (T.to_string oracle))
    [ (true, 1); (true, 4); (false, 1); (false, 4) ];
  let want = reference inputs q in
  if not (T.equal_approx ~eps:1e-6 oracle want) then
    Alcotest.failf "%s: disagrees with reference:\ngot  %s\nwant %s" name
      (T.to_string oracle) (T.to_string want)

let all_dense dims = Array.map (fun _ -> T.Dense) dims
let all_bytemap dims = Array.map (fun _ -> T.Bytemap) dims

let matvec =
  LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
    ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "v" [ "j" ] ])
    ()

let test_micro_dense_matvec () =
  let prng = Prng.create 41 in
  let a =
    T.random ~prng ~dims:[| 150; 40 |] ~formats:(all_dense [| 0; 0 |])
      ~density:0.9 ()
  in
  let v =
    T.random ~prng ~dims:[| 40 |] ~formats:(all_dense [| 0 |]) ~density:0.9 ()
  in
  check_v2_matrix "dense matvec" [ ("A", a); ("v", v) ] matvec;
  (* Scalar reduction: no output coordinate to write in the inner loop. *)
  let dot =
    LQ.make ~output_idxs:[] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "v" [ "j" ]; Ir.input "w" [ "j" ] ])
      ()
  in
  let w =
    T.random ~prng ~dims:[| 40 |] ~formats:(all_dense [| 0 |]) ~density:0.9 ()
  in
  check_v2_matrix "dense dot" [ ("v", v); ("w", w) ] dot;
  (* Three dense operands + a map op in the body. *)
  let saxpy =
    LQ.make ~output_idxs:[ "j" ] ~name:"out" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:
        (Ir.add
           [
             Ir.mul [ Ir.lit 2.5; Ir.input "v" [ "j" ] ]; Ir.input "w" [ "j" ];
           ])
      ()
  in
  check_v2_matrix "dense axpy" [ ("v", v); ("w", w) ] saxpy

let test_micro_absent_rows () =
  (* Sparse outer level over a dense inner level: rows absent from A
     must make the microkernel fall back per-visit (an absent operand
     contributes nothing, which the generic generators express by
     iterating an empty candidate set — the micro loop must not run). *)
  let prng = Prng.create 43 in
  let a =
    T.random ~prng ~dims:[| 25; 30 |]
      ~formats:[| T.Sparse_list; T.Dense |]
      ~density:0.08 ()
  in
  let v =
    T.random ~prng ~dims:[| 30 |] ~formats:(all_dense [| 0 |]) ~density:0.9 ()
  in
  check_v2_matrix "absent-row matvec" [ ("A", a); ("v", v) ] matvec

let test_micro_nonzero_fill () =
  (* Fill-1 dense operands: the innermost constraint tree is a union of
     dense accesses, still micro-eligible, and the freeze-time fill
     correction must agree across every configuration. *)
  let a =
    T.of_coo ~fill:1.0 ~dims:[| 6; 70 |] ~formats:[| T.Dense; T.Dense |]
      [| ([| 0; 1 |], 3.0); ([| 2; 64 |], 0.5); ([| 5; 69 |], -2.0) |]
  in
  let v =
    T.of_coo ~fill:1.0 ~dims:[| 70 |] ~formats:[| T.Dense |]
      [| ([| 2 |], 2.0); ([| 64 |], 4.0) |]
  in
  check_v2_matrix "fill-1 matvec" [ ("A", a); ("v", v) ] matvec

let test_bitand_bytemap () =
  let prng = Prng.create 47 in
  let mk density =
    T.random ~prng ~dims:[| 200 |] ~formats:(all_bytemap [| 0 |]) ~density ()
  in
  let q3 =
    LQ.make ~output_idxs:[] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "i" ]
      ~body:
        (Ir.mul
           [ Ir.input "x" [ "i" ]; Ir.input "y" [ "i" ]; Ir.input "z" [ "i" ] ])
      ()
  in
  (* Dense enough that the word-merge heuristic fires... *)
  check_v2_matrix "bytemap 3-way and"
    [ ("x", mk 0.5); ("y", mk 0.6); ("z", mk 0.5) ]
    q3;
  (* ...and sparse enough that it declines and takes the cursor path. *)
  check_v2_matrix "bytemap sparse and"
    [ ("x", mk 0.01); ("y", mk 0.5); ("z", mk 0.02) ]
    q3;
  (* An all-fill operand annihilates the whole intersection. *)
  let empty = T.of_coo ~dims:[| 200 |] ~formats:[| T.Bytemap |] [||] in
  check_v2_matrix "bytemap and with empty operand"
    [ ("x", mk 0.5); ("y", empty); ("z", mk 0.5) ]
    q3

let test_bitor_bytemap () =
  let prng = Prng.create 53 in
  let mk density =
    T.random ~prng ~dims:[| 200 |] ~formats:(all_bytemap [| 0 |]) ~density ()
  in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Ident ~agg_idxs:[]
      ~body:(Ir.add [ Ir.input "x" [ "i" ]; Ir.input "y" [ "i" ] ])
      ()
  in
  check_v2_matrix "bytemap union" [ ("x", mk 0.4); ("y", mk 0.5) ] q;
  let empty = T.of_coo ~dims:[| 200 |] ~formats:[| T.Bytemap |] [||] in
  check_v2_matrix "bytemap union, one empty" [ ("x", empty); ("y", mk 0.5) ] q;
  check_v2_matrix "bytemap union, both empty" [ ("x", empty); ("y", empty) ] q

let test_bytemap_matrix_levels () =
  (* Two bytemap x bytemap matrices: both loop levels carry all-bytemap
     constraint trees, so the word merge nests under the outer one. *)
  let prng = Prng.create 59 in
  let mk () =
    T.random ~prng ~dims:[| 50; 80 |]
      ~formats:[| T.Bytemap; T.Bytemap |]
      ~density:0.4 ()
  in
  let q =
    LQ.make ~output_idxs:[ "i" ] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "j" ]
      ~body:(Ir.mul [ Ir.input "A" [ "i"; "j" ]; Ir.input "B" [ "i"; "j" ] ])
      ()
  in
  check_v2_matrix "bytemap matrix hadamard-sum" [ ("A", mk ()); ("B", mk ()) ] q

let test_morsel_vs_static () =
  (* Same plan, same inputs: the morsel scheduler and the static
     chunker must both replay to the serial accumulation sequence. *)
  let prng = Prng.create 61 in
  let a =
    T.random ~prng ~dims:[| 500; 300 |]
      ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.05 ()
  in
  let v =
    T.random ~prng ~dims:[| 300 |] ~formats:[| T.Dense |] ~density:0.8 ()
  in
  let inputs = [ ("A", a); ("v", v) ] in
  let plan = plan_for inputs matvec in
  let serial =
    with_v2 true (fun () -> run_plan_with Exec.Staged 1 inputs plan "out")
  in
  List.iter
    (fun morsel ->
      let par =
        with_v2 true (fun () ->
            V2.morsel := morsel;
            run_plan_with Exec.Staged 4 inputs plan "out")
      in
      if not (bits_equal serial par) then
        Alcotest.failf "morsel=%b: domains=4 diverges from domains=1" morsel)
    [ true; false ]

(* -------------------------------------------------------------- *)
(* Surfacing: merge-strategy strings and scheduler metrics.         *)
(* -------------------------------------------------------------- *)

let contains ~needle hay =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* Run [plan] under tracing and return the "merge" attr of the first
   kernel span. *)
let merge_attr_of ~domains inputs plan name =
  Trace.reset ();
  Trace.enable ();
  Fun.protect
    ~finally:(fun () -> Trace.disable ())
    (fun () ->
      ignore (run_plan_with Exec.Staged domains inputs plan name);
      let evs = Trace.drain () in
      let is_kernel e =
        String.length e.Trace.ev_name >= 7
        && String.sub e.Trace.ev_name 0 7 = "kernel:"
      in
      match List.find_opt is_kernel evs with
      | None -> Alcotest.fail "no kernel span traced"
      | Some e -> (
          match List.assoc_opt "merge" e.Trace.ev_args with
          | None -> Alcotest.fail "kernel span lost its merge attr"
          | Some m -> m))

let test_surfacing_strategies () =
  let prng = Prng.create 67 in
  let a =
    T.random ~prng ~dims:[| 60; 40 |] ~formats:(all_dense [| 0; 0 |])
      ~density:0.9 ()
  in
  let v =
    T.random ~prng ~dims:[| 40 |] ~formats:(all_dense [| 0 |]) ~density:0.9 ()
  in
  let dense_inputs = [ ("A", a); ("v", v) ] in
  let dense_plan = plan_for dense_inputs matvec in
  with_v2 true (fun () ->
      let m = merge_attr_of ~domains:1 dense_inputs dense_plan "out" in
      check_bool "micro named in explain" true (contains ~needle:"micro(" m);
      let m4 = merge_attr_of ~domains:4 dense_inputs dense_plan "out" in
      check_bool "morsel scheduler named" true
        (contains ~needle:" par:morsel" m4);
      V2.morsel := false;
      let ms = merge_attr_of ~domains:4 dense_inputs dense_plan "out" in
      check_bool "static scheduler named" true
        (contains ~needle:" par:static" ms));
  with_v2 false (fun () ->
      let m = merge_attr_of ~domains:1 dense_inputs dense_plan "out" in
      check_bool "v1 compile drops micro" false (contains ~needle:"micro(" m));
  let mkb d =
    T.random ~prng ~dims:[| 200 |] ~formats:(all_bytemap [| 0 |]) ~density:d ()
  in
  let band =
    LQ.make ~output_idxs:[] ~name:"out" ~agg_op:Op.Add ~agg_idxs:[ "i" ]
      ~body:(Ir.mul [ Ir.input "x" [ "i" ]; Ir.input "y" [ "i" ] ])
      ()
  in
  let b_inputs = [ ("x", mkb 0.5); ("y", mkb 0.5) ] in
  let b_plan = plan_for b_inputs band in
  with_v2 true (fun () ->
      let m = merge_attr_of ~domains:1 b_inputs b_plan "out" in
      check_bool "bitand named in explain" true (contains ~needle:"bitand(" m))

let test_morsel_metrics () =
  let prng = Prng.create 71 in
  let a =
    T.random ~prng ~dims:[| 400; 50 |]
      ~formats:[| T.Dense; T.Sparse_list |]
      ~density:0.1 ()
  in
  let v =
    T.random ~prng ~dims:[| 50 |] ~formats:[| T.Dense |] ~density:0.9 ()
  in
  let inputs = [ ("A", a); ("v", v) ] in
  let plan = plan_for inputs matvec in
  let morsels = Metrics.counter "kernel.morsels" in
  let before = Metrics.value morsels in
  with_v2 true (fun () ->
      ignore (run_plan_with Exec.Staged 4 inputs plan "out"));
  check_bool "kernel.morsels advanced" true (Metrics.value morsels > before);
  (* The steals counter exists (its value is schedule-dependent). *)
  check_bool "kernel.steals registered" true
    (Metrics.value (Metrics.counter "kernel.steals") >= 0)

(* -------------------------------------------------------------- *)
(* Sparse-weight GCN workload.                                      *)
(* -------------------------------------------------------------- *)

let test_gcn_sparse_weights () =
  let g = G.erdos_renyi ~seed:13 ~n:60 ~m:300 () in
  let inputs = I.gcn_sparse_inputs ~seed:5 ~weight_density:0.25 g ~features:8 in
  let w = List.assoc "W" inputs in
  check_bool "W actually pruned" true (T.nnz w < 8 * 8);
  match Fix.run_source_checked ~inputs (I.gcn_sparse_source ~layers:2 ()) with
  | Error e -> Alcotest.failf "gcn_sparse: %s" (E.to_string e)
  | Ok (res, _) ->
      let h = D.output_of res "H" in
      let want =
        I.gcn_reference ~a:(List.assoc "A" inputs) ~h0:(List.assoc "H" inputs)
          ~w ~layers:2
      in
      check_bool "dims" true (T.dims h = [| 60; 8 |]);
      Array.iteri
        (fun i row ->
          Array.iteri
            (fun f want_v ->
              let got = T.get h [| i; f |] in
              if abs_float (got -. want_v) > 1e-6 then
                Alcotest.failf "H[%d,%d] = %g, want %g" i f got want_v)
            row)
        want

(* -------------------------------------------------------------- *)
(* Property: random kernels through the full matrix.                *)
(* -------------------------------------------------------------- *)

let prop_v2_matrix =
  QCheck.Test.make ~name:"v2 on/off x domains 1/4: bit-identical" ~count:30
    (QCheck.int_range 0 1_000_000)
    (fun seed ->
      let prng = Prng.create seed in
      (* Biased toward Dense and Bytemap so the micro and word-merge
         paths fire often; Sparse_list/Hash keep the fallbacks hot. *)
      let fmt () =
        match Prng.int prng 6 with
        | 0 | 1 -> T.Dense
        | 2 | 3 -> T.Bytemap
        | 4 -> T.Sparse_list
        | _ -> T.Hash
      in
      let fill () =
        match Prng.int prng 4 with 0 | 1 | 2 -> 0.0 | _ -> 1.0
      in
      let n1 = 10 + Prng.int prng 50 and n2 = 10 + Prng.int prng 50 in
      let rand dims =
        T.random ~fill:(fill ()) ~prng ~dims
          ~formats:(Array.init (Array.length dims) (fun _ -> fmt ()))
          ~density:(Prng.float_range prng 0.1 0.7)
          ()
      in
      let a = rand [| n1; n2 |] in
      let b = rand [| n2 |] in
      let c = rand [| n1 |] in
      let inputs = [ ("A", a); ("b", b); ("c", c) ] in
      let leaf () =
        match Prng.int prng 4 with
        | 0 -> Ir.input "A" [ "i"; "j" ]
        | 1 -> Ir.input "b" [ "j" ]
        | 2 -> Ir.input "c" [ "i" ]
        | _ -> Ir.lit (Prng.float_range prng (-1.0) 2.0)
      in
      let rec gen depth =
        if depth = 0 || Prng.int prng 3 = 0 then leaf ()
        else
          match Prng.int prng 6 with
          | 0 -> Ir.add [ gen (depth - 1); gen (depth - 1) ]
          | 1 | 2 -> Ir.mul [ gen (depth - 1); gen (depth - 1) ]
          | 3 -> Ir.Map (Op.Max, [ gen (depth - 1); gen (depth - 1) ])
          | 4 -> Ir.map Op.Relu [ gen (depth - 1) ]
          | _ -> Ir.Map (Op.Sub, [ gen (depth - 1); gen (depth - 1) ])
      in
      let body = gen 3 in
      let free = Ir.Idx_set.elements (Ir.free_indices body) in
      let agg_op =
        match Prng.int prng 3 with 0 | 1 -> Op.Add | _ -> Op.Max
      in
      let agg_idxs = List.filter (fun _ -> Prng.bool prng) free in
      let output_idxs = List.filter (fun i -> not (List.mem i agg_idxs)) free in
      let agg_op = if agg_idxs = [] then Op.Ident else agg_op in
      let out_fmts = Array.init (List.length output_idxs) (fun _ -> fmt ()) in
      let popt_config =
        {
          Popt.default_config with
          format_override = (fun n -> if n = "out" then Some out_fmts else None);
        }
      in
      let q = LQ.make ~output_idxs ~name:"out" ~agg_op ~agg_idxs ~body () in
      check_v2_matrix ~popt_config "random kernel" inputs q;
      true)

let () =
  Alcotest.run "kernels_v2"
    [
      ( "bitset",
        [
          Alcotest.test_case "shapes and membership" `Quick test_bitset_shapes;
          Alcotest.test_case "empty masks" `Quick test_bitset_empty_mask;
          Alcotest.test_case "all-set masks and tail words" `Quick
            test_bitset_all_set_tail;
          Alcotest.test_case "iter_set ascending" `Quick
            test_bitset_iter_ascending;
          Alcotest.test_case "algebra vs naive" `Quick
            test_bitset_algebra_vs_naive;
        ] );
      ( "morsel",
        [
          Alcotest.test_case "range protocol" `Quick test_morsel_ranges;
          Alcotest.test_case "disjoint cover under contention" `Quick
            test_morsel_disjoint_cover;
        ] );
      ( "differential",
        [
          Alcotest.test_case "dense microkernels" `Quick test_micro_dense_matvec;
          Alcotest.test_case "micro absent-row fallback" `Quick
            test_micro_absent_rows;
          Alcotest.test_case "micro non-annihilating fill" `Quick
            test_micro_nonzero_fill;
          Alcotest.test_case "bytemap word intersection" `Quick
            test_bitand_bytemap;
          Alcotest.test_case "bytemap word union" `Quick test_bitor_bytemap;
          Alcotest.test_case "nested bytemap levels" `Quick
            test_bytemap_matrix_levels;
          Alcotest.test_case "morsel vs static scheduling" `Quick
            test_morsel_vs_static;
        ] );
      ( "surfacing",
        [
          Alcotest.test_case "merge-strategy strings" `Quick
            test_surfacing_strategies;
          Alcotest.test_case "scheduler metrics" `Quick test_morsel_metrics;
        ] );
      ( "workloads",
        [
          Alcotest.test_case "sparse-weight gcn" `Quick test_gcn_sparse_weights;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_v2_matrix ] );
    ]
